// Memory address decomposition helpers.
//
// The paper uses three address shapes (§3.1.1, §3.2.2, Fig 3.10):
//
//   conventional : address = (module, offset)        module routed, offset used in module
//   fully CFM    : address = (offset, bank)          bank chosen by the clock, not sent
//   partial CFM  : address = (module, offset, bank)  module routed, bank by clock
//
// We store block-granular addresses as (module, block_offset); the bank a
// word lives in is `word_index` within the block and is *never* part of a
// request header in CFM mode — which is exactly the header-size saving
// quantified by `net::header_bits` (Fig 3.9/3.10).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

#include "sim/types.hpp"

namespace cfm::mem {

/// Identifies one block in the machine: which module and which block
/// offset within that module's address space.
struct BlockId {
  sim::ModuleId module = 0;
  sim::BlockAddr offset = 0;

  friend auto operator<=>(const BlockId&, const BlockId&) = default;
};

/// A flat word address, useful for conventional-memory bookkeeping:
/// word = block * words_per_block + word_index.
struct WordAddr {
  BlockId block;
  std::uint32_t word_index = 0;

  friend auto operator<=>(const WordAddr&, const WordAddr&) = default;
};

struct BlockIdHash {
  [[nodiscard]] std::size_t operator()(const BlockId& b) const noexcept {
    // Fibonacci mix of the two fields.
    std::uint64_t x = (static_cast<std::uint64_t>(b.module) << 48) ^ b.offset;
    x *= 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(x ^ (x >> 29));
  }
};

}  // namespace cfm::mem
