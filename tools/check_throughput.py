#!/usr/bin/env python3
"""Throughput gate for the engine fast path (DESIGN.md section 12).

Reads a bench_sim_throughput ``--json-out`` report and enforces two
invariants:

  1. Speedup ratio (host-independent, the hard gate): on the 64-processor
     hierarchical CFM configuration, fast-path-on at span 64 must deliver
     at least ``--min-speedup`` (default 5x) the cycles/second of
     fast-path-off on the same host, same binary, same run.  The parallel
     engine variant must deliver at least ``--min-parallel-speedup``
     (default 2x; lower because shared CI runners oversubscribe the
     4 worker threads).

  2. Absolute regression (host-dependent, the trend gate): every
     benchmark present in the committed baseline
     (bench/baselines/sim_throughput.json) must stay within
     ``--tolerance`` (default 15%) of its baseline items_per_second.
     This catches "the fast path still wins its ratio but everything got
     slower" regressions.  Because the baseline is tied to the host class
     it was recorded on, refresh it whenever the benchmark set, machine
     configuration, or reference hardware changes:

         ./build/bench/bench_sim_throughput \
             --benchmark_filter=BM_FastPath \
             --json-out report.json
         python3 tools/check_throughput.py report.json --update

     and commit the updated baseline alongside the change that moved the
     numbers.

Exit status: 0 = all gates pass, 1 = a gate failed, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SERIAL_OFF = "BM_FastPathHierarchical/0/1/real_time"
SERIAL_FAST_SPAN64 = "BM_FastPathHierarchical/1/64/real_time"
PARALLEL_OFF = "BM_FastPathHierarchicalParallel/0/real_time"
PARALLEL_FAST = "BM_FastPathHierarchicalParallel/1/real_time"
TELEMETRY_OFF = "BM_TelemetryOverhead/0/real_time"
TELEMETRY_ON = "BM_TelemetryOverhead/1/real_time"


def load_rates(path: Path) -> dict[str, float]:
    """Return {benchmark name: items_per_second} from a report file."""
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"check_throughput: cannot read {path}: {err}")
    runs = doc.get("tables", {}).get("runs", [])
    rates: dict[str, float] = {}
    for row in runs:
        if "aggregate" in row:  # keep only the raw per-benchmark rows
            continue
        name = row.get("name")
        rate = row.get("items_per_second")
        if isinstance(name, str) and isinstance(rate, (int, float)):
            rates[name] = float(rate)
    if not rates:
        sys.exit(f"check_throughput: {path} has no usable runs "
                 "(expected tables.runs rows with items_per_second)")
    return rates


def speedup(rates: dict[str, float], fast: str, off: str) -> float | None:
    if fast not in rates or off not in rates or rates[off] <= 0:
        return None
    return rates[fast] / rates[off]


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("report", type=Path,
                        help="bench_sim_throughput --json-out report")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).resolve().parent.parent /
                        "bench" / "baselines" / "sim_throughput.json",
                        help="committed baseline report (default: "
                             "bench/baselines/sim_throughput.json)")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required serial fast/off ratio at span 64")
    parser.add_argument("--min-parallel-speedup", type=float, default=2.0,
                        help="required parallel-engine fast/off ratio")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max fractional regression vs baseline")
    parser.add_argument("--max-telemetry-overhead", type=float, default=0.25,
                        help="max fractional cycles/sec cost of the flight "
                             "recorder (telemetry-on vs telemetry-off)")
    parser.add_argument("--update", "--update-baseline", action="store_true",
                        dest="update",
                        help="overwrite the baseline with this report "
                             "and exit (no gates checked)")
    args = parser.parse_args()

    rates = load_rates(args.report)

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(
            json.dumps(json.loads(args.report.read_text()), indent=4,
                       sort_keys=True) + "\n")
        print(f"baseline refreshed: {args.baseline}")
        return 0

    failed = False

    # --- Gate 1: host-independent speedup ratios -------------------------
    for label, fast, off, floor in (
            ("serial span=64", SERIAL_FAST_SPAN64, SERIAL_OFF,
             args.min_speedup),
            ("parallel", PARALLEL_FAST, PARALLEL_OFF,
             args.min_parallel_speedup)):
        ratio = speedup(rates, fast, off)
        if ratio is None:
            print(f"FAIL  {label}: missing runs ({fast} / {off})")
            failed = True
            continue
        verdict = "ok  " if ratio >= floor else "FAIL"
        if ratio < floor:
            failed = True
        print(f"{verdict}  {label}: fast/off speedup {ratio:.2f}x "
              f"(floor {floor:.1f}x)")

    # --- Gate 1b: telemetry overhead bound -------------------------------
    # Also a same-host ratio: the flight recorder (DESIGN.md section 14)
    # must cost at most --max-telemetry-overhead of the busy-machine
    # cycles/sec it observes.  Skipped when the report was filtered down
    # to a benchmark set that does not include the pair.
    if TELEMETRY_ON in rates or TELEMETRY_OFF in rates:
        ratio = speedup(rates, TELEMETRY_ON, TELEMETRY_OFF)
        if ratio is None:
            print("FAIL  telemetry: missing runs "
                  f"({TELEMETRY_ON} / {TELEMETRY_OFF})")
            failed = True
        else:
            overhead = 1.0 - ratio
            ok = overhead <= args.max_telemetry_overhead
            if not ok:
                failed = True
            print(f"{'ok  ' if ok else 'FAIL'}  telemetry: recorder overhead "
                  f"{overhead:+.1%} (budget {args.max_telemetry_overhead:.0%})")

    # --- Gate 2: absolute regression vs committed baseline ---------------
    # Coverage must match in BOTH directions.  A benchmark present in the
    # baseline but missing from the live report means the gate lost a
    # regression tripwire; a benchmark present in the report but missing
    # from the baseline means it runs with NO tripwire at all — both used
    # to slip through silently (the loop below only walked the baseline).
    base = load_rates(args.baseline)
    coverage_gap = False
    for name in sorted(set(base) - set(rates)):
        print(f"FAIL  baseline benchmark missing from report: {name}")
        coverage_gap = failed = True
    for name in sorted(set(rates) - set(base)):
        print(f"FAIL  report benchmark missing from baseline: {name} "
              "(it would run ungated)")
        coverage_gap = failed = True
    width = max(len(n) for n in base)
    print(f"\n{'benchmark':<{width}}  {'baseline':>12}  {'current':>12}  "
          f"{'delta':>8}")
    for name in sorted(base):
        if name not in rates:
            print(f"{name:<{width}}  {base[name]:>12.3e}  {'missing':>12}  "
                  f"{'FAIL':>8}")
            continue
        delta = (rates[name] - base[name]) / base[name]
        flag = "" if delta >= -args.tolerance else "  <-- regression"
        if delta < -args.tolerance:
            failed = True
        print(f"{name:<{width}}  {base[name]:>12.3e}  {rates[name]:>12.3e}  "
              f"{delta:>+7.1%}{flag}")

    if failed:
        msg = ("\nthroughput gate FAILED (see rows above); to accept a new "
               "performance floor, refresh the baseline with\n"
               f"    python3 tools/check_throughput.py {args.report} "
               "--update-baseline\nand commit it")
        if coverage_gap:
            msg += ("\n(coverage mismatch: the benchmark sets in the report "
                    "and the committed baseline differ — refreshing the "
                    "baseline realigns them; if a benchmark disappeared "
                    "unintentionally, fix the benchmark filter instead)")
        print(msg, file=sys.stderr)
        return 1
    print("\nthroughput gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
