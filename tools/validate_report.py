#!/usr/bin/env python3
"""Validate a cfm-bench-report/v1, cfm-campaign-report/v1, or
cfm-serve-report/v1 JSON document.

Usage: validate_report.py REPORT.json [REPORT.json ...]

Checks the schema marker, the required top-level sections, and the shape
of each statistics container (stats need the six moment fields,
histograms need buckets/total/quantiles, tables must be lists of
objects).  Reports produced with --txn-trace / --audit additionally get
their "txn_trace" and "audit" sections checked: span records must have
monotonic cycles and per-phase attribution sums equal to end-to-end
latency, and an audit section with violations > 0 fails validation (the
conflict-freedom invariant broke).  Campaign reports (from cfm_campaign)
are dispatched on their schema marker instead: the point count must
equal the sweep-grid cardinality, every point needs its content-address
key and either metrics or an error, the per-axis tables must cover each
axis value once, and a nonzero audit rollup fails validation.  Serve
reports (from cfm_serve) must balance their admission arithmetic
(offered = accepted + rejected, accepted = completed + failed +
unfinished), carry the latency percentiles and an SLO attainment in
[0, 1], and — like every other schema — fail on a nonzero audit section.
Reports carrying a "timeseries" section (serve reports by default,
bench/campaign reports when telemetry was enabled) get the flight
recorder validated: the cfm-timeseries/v1 marker, the window geometry
(window_cycles == base_window * scale), strictly-increasing
window-aligned starts within the horizon, per-row column arity, and the
rate arithmetic — the per-window counter deltas must sum exactly to the
exported totals.  A serve "anomalies" section must be self-consistent
(count == len(findings)); pass --fail-on-anomalies to additionally turn
a nonzero anomaly count into a validation failure (the CI telemetry job
gates clean runs this way).  Exits nonzero on the first invalid report —
used by the CI bench-reports, audit, campaign, serve-smoke, and
telemetry jobs and handy locally after `--json-out`.
"""
import json
import math
import sys

SCHEMA = "cfm-bench-report/v1"
CAMPAIGN_SCHEMA = "cfm-campaign-report/v1"
SERVE_SCHEMA = "cfm-serve-report/v1"
REQUIRED = ("schema", "name", "params", "metrics", "counters", "stats",
            "histograms", "tables")
STAT_FIELDS = ("count", "mean", "min", "max", "stddev", "sum")


def fail(path, msg):
    print(f"{path}: INVALID — {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(path, where, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{where} is not a number (got {type(value).__name__})")


def validate(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    if doc.get("schema") == CAMPAIGN_SCHEMA:
        validate_campaign(path, doc)
        return
    if doc.get("schema") == SERVE_SCHEMA:
        validate_serve(path, doc)
        return
    for key in REQUIRED:
        if key not in doc:
            fail(path, f"missing required key '{key}'")
    if doc["schema"] != SCHEMA:
        fail(path, f"schema is {doc['schema']!r}, want {SCHEMA!r}")
    if not isinstance(doc["name"], str) or not doc["name"]:
        fail(path, "name must be a non-empty string")
    for section in ("params", "metrics", "counters", "stats", "histograms",
                    "tables"):
        if not isinstance(doc[section], dict):
            fail(path, f"'{section}' is not an object")
    for name, counters in doc["counters"].items():
        if not isinstance(counters, dict):
            fail(path, f"counter set '{name}' is not an object")
        for cname, value in counters.items():
            if not isinstance(value, int) or value < 0:
                fail(path, f"counter {name}.{cname} is not a non-negative int")
    for name, stat in doc["stats"].items():
        if not isinstance(stat, dict):
            fail(path, f"stat '{name}' is not an object")
        for field in STAT_FIELDS:
            if field not in stat:
                fail(path, f"stat '{name}' missing '{field}'")
            check_number(path, f"stat {name}.{field}", stat[field])
    for name, hist in doc["histograms"].items():
        for field in ("bucket_width", "buckets", "overflow", "total",
                      "quantiles"):
            if field not in hist:
                fail(path, f"histogram '{name}' missing '{field}'")
        if not isinstance(hist["buckets"], list):
            fail(path, f"histogram '{name}' buckets is not a list")
        if not isinstance(hist["quantiles"], dict):
            fail(path, f"histogram '{name}' quantiles is not an object")
    for name, rows in doc["tables"].items():
        if not isinstance(rows, list):
            fail(path, f"table '{name}' is not a list")
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                fail(path, f"table '{name}' row {i} is not an object")
    extras = []
    if "txn_trace" in doc:
        validate_txn_trace(path, doc["txn_trace"])
        extras.append(f"txn_trace ({doc['txn_trace']['completed']} txns)")
    if "audit" in doc:
        validate_audit(path, doc["audit"])
        extras.append(f"audit ({doc['audit']['checks']} checks)")
    if "faults" in doc["tables"]:
        validate_faults(path, doc["tables"]["faults"])
        extras.append(f"faults ({len(doc['tables']['faults'])} scenarios)")
    if "coded" in doc["tables"]:
        validate_coded(path, doc["tables"]["coded"])
        extras.append(f"coded ({len(doc['tables']['coded'])} configs)")
    if "timeseries" in doc:
        validate_timeseries(path, doc["timeseries"], "timeseries")
        extras.append(
            f"timeseries ({len(doc['timeseries']['windows'])} windows)")
    if "recovery" in doc["tables"]:
        validate_recovery(path, doc["tables"]["recovery"], "tables.recovery")
        extras.append(f"recovery ({len(doc['tables']['recovery'])} faults)")
    n_rows = sum(len(r) for r in doc["tables"].values())
    print(f"{path}: ok — name={doc['name']!r}, "
          f"{len(doc['params'])} params, {len(doc['metrics'])} metrics, "
          f"{len(doc['tables'])} tables ({n_rows} rows), "
          f"{len(doc['stats'])} stats, {len(doc['histograms'])} histograms"
          + "".join(f", {e}" for e in extras))


PHASES = ("queue", "stall", "cache", "bank", "network", "coherence",
          "modify", "drain")


def validate_txn_trace(path, section):
    """The "txn_trace" section: counters, attribution histograms, and the
    sampled span records, whose per-phase attribution must sum exactly to
    the end-to-end latency (the tracer's stall-folding invariant)."""
    if not isinstance(section, dict):
        fail(path, "'txn_trace' is not an object")
    for key in ("started", "completed", "aborted", "dropped", "attribution",
                "attribution_cycles", "latency", "units", "spans",
                "spans_truncated"):
        if key not in section:
            fail(path, f"txn_trace missing '{key}'")
    for key in ("started", "completed", "aborted", "dropped"):
        if not isinstance(section[key], int) or section[key] < 0:
            fail(path, f"txn_trace.{key} is not a non-negative int")
    if section["completed"] + section["aborted"] > section["started"]:
        fail(path, "txn_trace: completed + aborted exceeds started")
    if not isinstance(section["spans"], list):
        fail(path, "txn_trace.spans is not a list")
    for i, rec in enumerate(section["spans"]):
        where = f"txn_trace.spans[{i}]"
        for key in ("id", "unit", "proc", "kind", "enqueued", "issued",
                    "completed", "ok", "restarts", "attr", "spans"):
            if key not in rec:
                fail(path, f"{where} missing '{key}'")
        if rec["issued"] < rec["enqueued"]:
            fail(path, f"{where}: issued before enqueued")
        spans = rec["spans"]
        for j, span in enumerate(spans):
            if span["phase"] not in PHASES:
                fail(path, f"{where}.spans[{j}]: unknown phase "
                           f"{span['phase']!r}")
            if span["end"] < span["begin"]:
                fail(path, f"{where}.spans[{j}]: end before begin")
            if j > 0 and span["begin"] < spans[j - 1]["begin"]:
                fail(path, f"{where}.spans[{j}]: cycles not monotonic")
        if rec["ok"]:
            if rec["completed"] is None:
                fail(path, f"{where}: ok but no completion cycle")
            latency = rec["completed"] - rec["enqueued"]
            attr_sum = sum(rec["attr"].values())
            if attr_sum != latency:
                fail(path, f"{where}: attribution sums to {attr_sum}, "
                           f"latency is {latency}")


def validate_audit(path, section):
    """The "audit" section: per-scope counter shape, and the hard gate —
    a ConflictFree scope reporting violations means the simulated machine
    broke the paper's invariant.  Injected-fault events ride in separate
    "injected" counters and are *not* violations."""
    if not isinstance(section, dict):
        fail(path, "'audit' is not an object")
    for key in ("violations", "conflicts_detected", "checks", "scopes",
                "samples"):
        if key not in section:
            fail(path, f"audit missing '{key}'")
    if "injected" in section and (not isinstance(section["injected"], int)
                                  or section["injected"] < 0):
        fail(path, "audit.injected is not a non-negative int")
    if not isinstance(section["scopes"], dict):
        fail(path, "audit.scopes is not an object")
    for name, scope in section["scopes"].items():
        for key in ("kind", "checks", "issues"):
            if key not in scope:
                fail(path, f"audit scope '{name}' missing '{key}'")
        if scope["kind"] not in ("conflict_free", "contended",
                                 "coded_relaxed"):
            fail(path, f"audit scope '{name}' has unknown kind "
                       f"{scope['kind']!r}")
        if "injected" in scope and not isinstance(scope["injected"], dict):
            fail(path, f"audit scope '{name}' injected is not an object")
    if not isinstance(section["samples"], list):
        fail(path, "audit.samples is not a list")
    if section["violations"] > 0:
        kinds = sorted({s.get("kind", "?") for s in section["samples"]})
        fail(path, f"audit reports {section['violations']} conflict-freedom "
                   f"violation(s) ({', '.join(kinds)}) — the CFM invariant "
                   f"broke")


FAULT_ROW_KEYS = ("scenario", "plan", "completed", "failed", "unfinished",
                  "max_access_time", "violations", "injected_detected")


def validate_faults(path, rows):
    """The "faults" table from bench_fault_degradation: every scenario row
    carries the degradation metrics, reports zero *genuine* violations
    (injected events are classified separately), and the clean baseline
    reports no injected events at all."""
    if not rows:
        fail(path, "tables.faults is empty")
    for i, row in enumerate(rows):
        where = f"tables.faults[{i}]"
        for key in FAULT_ROW_KEYS:
            if key not in row:
                fail(path, f"{where} missing '{key}'")
        for key in ("completed", "failed", "unfinished", "violations",
                    "injected_detected"):
            if not isinstance(row[key], int) or row[key] < 0:
                fail(path, f"{where}.{key} is not a non-negative int")
        check_number(path, f"{where}.max_access_time", row["max_access_time"])
        if row["violations"] != 0:
            fail(path, f"{where}: scenario {row['scenario']!r} reports "
                       f"{row['violations']} genuine conflict violation(s)")
        if row["scenario"] == "baseline" and row["injected_detected"] != 0:
            fail(path, f"{where}: clean baseline reports injected faults")


CODED_ROW_KEYS = ("scenario", "data_banks", "parity_banks", "stripe_width",
                  "parity_per_stripe", "parity_policy", "code_rate",
                  "banks_provisioned", "efficiency", "mean_access_time",
                  "completed", "failed", "reads_direct", "reads_decoded",
                  "writes", "decode_fanout_max", "parity_updates",
                  "parity_amplification", "decode_mismatches", "violations")


def validate_coded(path, rows):
    """The "coded" table from bench_coded_memory: one row per (code,
    policy, scenario).  The structural arithmetic is re-derived — the code
    rate from the stripe shape, the provisioning from the split, the
    parity amplification from its counters — and the coded contract is
    re-checked: decode fan-out within the stripe width, every decode
    verified against the architectural word, zero violations, and no
    failed accesses (faults must be absorbed by decode, not surfaced)."""
    if not rows:
        fail(path, "tables.coded is empty")
    for i, row in enumerate(rows):
        where = f"tables.coded[{i}]"
        for key in CODED_ROW_KEYS:
            if key not in row:
                fail(path, f"{where} missing '{key}'")
        for key in ("data_banks", "parity_banks", "stripe_width",
                    "parity_per_stripe", "banks_provisioned", "completed",
                    "failed", "reads_direct", "reads_decoded", "writes",
                    "decode_fanout_max", "parity_updates",
                    "decode_mismatches", "violations"):
            if not isinstance(row[key], int) or row[key] < 0:
                fail(path, f"{where}.{key} is not a non-negative int")
        k, r = row["stripe_width"], row["parity_per_stripe"]
        if not 1 <= k <= row["data_banks"] or row["data_banks"] % k != 0:
            fail(path, f"{where}: stripe width {k} does not tile "
                       f"{row['data_banks']} data banks")
        want_rate = k / (k + r)
        if abs(row["code_rate"] - want_rate) > 1e-9:
            fail(path, f"{where}: code_rate {row['code_rate']} != "
                       f"k/(k+r) = {want_rate}")
        want_parity = (row["data_banks"] // k) * r
        if row["parity_banks"] != want_parity:
            fail(path, f"{where}: parity_banks {row['parity_banks']} != "
                       f"stripes*r = {want_parity}")
        if row["banks_provisioned"] != row["data_banks"] + row["parity_banks"]:
            fail(path, f"{where}: banks_provisioned is not data + parity")
        if row["decode_fanout_max"] > k:
            fail(path, f"{where}: decode fan-out {row['decode_fanout_max']} "
                       f"exceeds the stripe width {k} — the relaxed bound "
                       f"broke")
        if r == 0 and row["reads_decoded"] != 0:
            fail(path, f"{where}: uncoded split reports decoded reads")
        writes = row["writes"]
        amp = row["parity_amplification"]
        check_number(path, f"{where}.parity_amplification", amp)
        want_amp = 0.0 if writes == 0 else row["parity_updates"] / writes
        if abs(amp - want_amp) > 1e-9:
            fail(path, f"{where}: parity_amplification {amp} != "
                       f"parity_updates/writes = {want_amp}")
        if row["decode_mismatches"] != 0:
            fail(path, f"{where}: {row['decode_mismatches']} decode(s) "
                       f"disagreed with the architectural word")
        if row["violations"] != 0:
            fail(path, f"{where}: scenario {row['scenario']!r} reports "
                       f"{row['violations']} coded-scope violation(s)")
        if row["failed"] != 0:
            fail(path, f"{where}: scenario {row['scenario']!r} reports "
                       f"{row['failed']} failed access(es) — faults must be "
                       f"absorbed by decode")
        if row["scenario"] == "bank_dead" and row["reads_decoded"] == 0:
            fail(path, f"{where}: bank_dead scenario served no decoded reads")


TIMESERIES_SCHEMA = "cfm-timeseries/v1"
TIMESERIES_REQUIRED = ("schema", "base_window", "window_cycles", "scale",
                       "capacity", "horizon", "counters", "gauges",
                       "histograms", "windows", "totals")
RECOVERY_ROW_KEYS = ("kind", "at", "duration", "degraded_windows",
                     "first_degraded_start", "last_degraded_end", "recovered",
                     "mttr_cycles", "windows_under_slo",
                     "time_under_slo_cycles")


def validate_timeseries(path, ts, where):
    """A cfm-timeseries/v1 flight-recorder export.  The geometry is
    self-describing and the series must be internally consistent: windows
    strictly increasing, aligned to the (possibly downsampled) window
    size, bounded by the horizon, every row carrying one delta per
    registered counter, and the deltas summing to the cumulative totals
    (windowed rates are exact re-partitions of the final counters)."""
    if not isinstance(ts, dict):
        fail(path, f"{where} is not an object")
    for key in TIMESERIES_REQUIRED:
        if key not in ts:
            fail(path, f"{where} missing '{key}'")
    if ts["schema"] != TIMESERIES_SCHEMA:
        fail(path, f"{where}.schema is {ts['schema']!r}, "
                   f"want {TIMESERIES_SCHEMA!r}")
    for key in ("base_window", "window_cycles", "scale", "capacity",
                "horizon"):
        if not isinstance(ts[key], int) or ts[key] < 0:
            fail(path, f"{where}.{key} is not a non-negative int")
    if ts["window_cycles"] != ts["base_window"] * ts["scale"]:
        fail(path, f"{where}: window_cycles {ts['window_cycles']} != "
                   f"base_window {ts['base_window']} * scale {ts['scale']}")
    names = ts["counters"]
    gauges = ts["gauges"]
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(ts[key], list):
            fail(path, f"{where}.{key} is not a list")
    windows = ts["windows"]
    if not isinstance(windows, list):
        fail(path, f"{where}.windows is not a list")
    if len(windows) > ts["capacity"]:
        fail(path, f"{where}: {len(windows)} windows exceed capacity "
                   f"{ts['capacity']}")
    sums = [0] * len(names)
    prev_start = -1
    for i, row in enumerate(windows):
        rw = f"{where}.windows[{i}]"
        for key in ("start", "counters", "gauges"):
            if key not in row:
                fail(path, f"{rw} missing '{key}'")
        start = row["start"]
        if not isinstance(start, int) or start < 0:
            fail(path, f"{rw}.start is not a non-negative int")
        if start <= prev_start:
            fail(path, f"{rw}: starts not strictly increasing")
        if start % ts["window_cycles"] != 0:
            fail(path, f"{rw}: start {start} not aligned to window "
                       f"{ts['window_cycles']}")
        if start > ts["horizon"]:
            fail(path, f"{rw}: start {start} past horizon {ts['horizon']}")
        prev_start = start
        if len(row["counters"]) != len(names):
            fail(path, f"{rw}: {len(row['counters'])} counter deltas for "
                       f"{len(names)} registered counters")
        if len(row["gauges"]) != len(gauges):
            fail(path, f"{rw}: {len(row['gauges'])} gauge values for "
                       f"{len(gauges)} registered gauges")
        for j, delta in enumerate(row["counters"]):
            if not isinstance(delta, int) or delta < 0:
                fail(path, f"{rw}.counters[{j}] is not a non-negative int")
            sums[j] += delta
    totals = ts["totals"]
    if not isinstance(totals, dict):
        fail(path, f"{where}.totals is not an object")
    for j, name in enumerate(names):
        if name not in totals:
            fail(path, f"{where}.totals missing counter '{name}'")
        if sums[j] != totals[name]:
            fail(path, f"{where}: window deltas for '{name}' sum to "
                       f"{sums[j]}, totals say {totals[name]} — the rate "
                       f"arithmetic broke")


def validate_recovery(path, rows, where):
    """The MTTR table derived from the flight recorder: one row per
    injected fault with degradation attribution and recovery verdict."""
    if not isinstance(rows, list):
        fail(path, f"{where} is not a list")
    for i, row in enumerate(rows):
        rw = f"{where}[{i}]"
        for key in RECOVERY_ROW_KEYS:
            if key not in row:
                fail(path, f"{rw} missing '{key}'")
        if not isinstance(row["recovered"], bool):
            fail(path, f"{rw}.recovered is not a bool")
        for key in ("at", "degraded_windows", "mttr_cycles",
                    "windows_under_slo", "time_under_slo_cycles"):
            if not isinstance(row[key], int) or row[key] < 0:
                fail(path, f"{rw}.{key} is not a non-negative int")
        if row["degraded_windows"] == 0 and row["mttr_cycles"] != 0:
            fail(path, f"{rw}: mttr without degraded windows")


def validate_anomalies(path, section, where, fail_on_anomalies):
    """The report-time anomaly scan: count must equal the findings list,
    and with --fail-on-anomalies a nonzero count fails validation."""
    if not isinstance(section, dict):
        fail(path, f"{where} is not an object")
    for key in ("count", "findings"):
        if key not in section:
            fail(path, f"{where} missing '{key}'")
    if not isinstance(section["findings"], list):
        fail(path, f"{where}.findings is not a list")
    if section["count"] != len(section["findings"]):
        fail(path, f"{where}: count {section['count']} != "
                   f"{len(section['findings'])} findings")
    for i, finding in enumerate(section["findings"]):
        if not isinstance(finding, dict) or "kind" not in finding:
            fail(path, f"{where}.findings[{i}] has no 'kind'")
    if fail_on_anomalies and section["count"] != 0:
        kinds = sorted({f["kind"] for f in section["findings"]})
        fail(path, f"{where} reports {section['count']} anomaly finding(s) "
                   f"({', '.join(kinds)})")


CODED_POINT_METRICS = ("decode_rate", "parity_amplification",
                       "decode_fanout_max", "banks_provisioned",
                       "banks_required_cfm", "pending_parity_end")


def validate_coded_point(path, where, point):
    """One executed point of a 'coded' campaign: the coded headline
    metrics must be present, the decode rate a valid fraction, the decode
    fan-out within the point's own stripe width, and the bank provisioning
    must re-derive from (data_banks, stripe_width, code_rate) — the
    "banks provisioned != banks required" seam, machine-checked."""
    params, metrics = point["params"], point["metrics"]
    for key in CODED_POINT_METRICS:
        if key not in metrics:
            fail(path, f"{where}.metrics missing coded metric '{key}'")
        check_number(path, f"{where}.metrics.{key}", metrics[key])
    if not 0.0 <= metrics["decode_rate"] <= 1.0:
        fail(path, f"{where}: decode_rate {metrics['decode_rate']} outside "
                   f"[0, 1]")
    if metrics["parity_amplification"] < 0.0:
        fail(path, f"{where}: negative parity_amplification")
    k = params.get("stripe_width")
    if isinstance(k, int) and metrics["decode_fanout_max"] > k:
        fail(path, f"{where}: decode fan-out {metrics['decode_fanout_max']} "
                   f"exceeds the stripe width {k}")
    d, rate = params.get("data_banks"), params.get("code_rate")
    if isinstance(d, int) and isinstance(k, int) and rate:
        r = round(k * (1.0 - rate) / rate)
        want = d + (d // k) * r
        if metrics["banks_provisioned"] != want:
            fail(path, f"{where}: banks_provisioned "
                       f"{metrics['banks_provisioned']} != data + parity "
                       f"derived from the code ({want})")
    n, c = params.get("n"), params.get("c")
    if isinstance(n, int) and isinstance(c, int) \
            and metrics["banks_required_cfm"] != n * c:
        fail(path, f"{where}: banks_required_cfm "
                   f"{metrics['banks_required_cfm']} != c*n = {n * c}")


CAMPAIGN_REQUIRED = ("schema", "name", "spec", "spec_hash", "axes", "points",
                     "counters", "stats", "tables", "audit", "totals")


def validate_campaign(path, doc):
    """A cfm-campaign-report/v1 document from cfm_campaign: the aggregate
    over one expanded sweep grid.  The grid is self-describing — the point
    count must equal the product of the axis lengths — and the report is a
    pure function of the spec plus per-point results, so validation can be
    strict about internal consistency."""
    for key in CAMPAIGN_REQUIRED:
        if key not in doc:
            fail(path, f"missing required key '{key}'")
    if not isinstance(doc["name"], str) or not doc["name"]:
        fail(path, "name must be a non-empty string")
    spec_hash = doc["spec_hash"]
    if (not isinstance(spec_hash, str) or len(spec_hash) != 16
            or any(ch not in "0123456789abcdef" for ch in spec_hash)):
        fail(path, "spec_hash is not 16 lowercase hex digits")
    for section in ("spec", "axes", "counters", "stats", "tables", "audit",
                    "totals"):
        if not isinstance(doc[section], dict):
            fail(path, f"'{section}' is not an object")
    axes = doc["axes"]
    grid = math.prod(len(v) for v in axes.values()) if axes else 1
    for axis, values in axes.items():
        if not isinstance(values, list) or not values:
            fail(path, f"axis '{axis}' is not a non-empty list")
    points = doc["points"]
    if not isinstance(points, list):
        fail(path, "'points' is not a list")
    if len(points) != grid:
        fail(path, f"{len(points)} points but the axes span a grid of {grid}")
    if doc["totals"].get("points") != len(points):
        fail(path, "totals.points disagrees with the points list")
    coded = doc["spec"].get("workload") == "coded"
    failed = 0
    violations_sum = 0
    ts_points = 0
    ts_windows = 0
    for i, point in enumerate(points):
        where = f"points[{i}]"
        for key in ("key", "params"):
            if key not in point:
                fail(path, f"{where} missing '{key}'")
        key = point["key"]
        if (not isinstance(key, str) or len(key) != 16
                or any(ch not in "0123456789abcdef" for ch in key)):
            fail(path, f"{where}.key is not 16 lowercase hex digits")
        if not isinstance(point["params"], dict):
            fail(path, f"{where}.params is not an object")
        for axis in axes:
            if axis not in point["params"]:
                fail(path, f"{where}.params missing swept axis '{axis}'")
        # The report is a pure function of the spec plus results: worker
        # execution provenance must never leak into the deterministic
        # body, or --workers N would stop being byte-identical.
        for key in ("worker", "workers", "pid", "host", "hostname", "lease",
                    "lease_ttl", "runner", "timestamp", "duration_ms"):
            if key in point:
                fail(path, f"{where} carries execution provenance '{key}' — "
                           f"the report body must be deterministic")
        if "attempts" in point:
            attempts = point["attempts"]
            if not isinstance(attempts, int) or attempts < 1:
                fail(path, f"{where}.attempts is not a positive int")
            if "error" not in point and attempts < 2:
                fail(path, f"{where}.attempts={attempts} on a clean row — "
                           f"first-attempt successes must omit the field")
        if "last_retry_error" in point:
            if "attempts" not in point:
                fail(path, f"{where}.last_retry_error without 'attempts'")
            if not isinstance(point["last_retry_error"], str) \
                    or not point["last_retry_error"]:
                fail(path, f"{where}.last_retry_error is not a non-empty "
                           f"string")
        if "error" in point:
            failed += 1
        elif "metrics" not in point or not isinstance(point["metrics"], dict):
            fail(path, f"{where} has neither metrics nor an error")
        elif coded:
            validate_coded_point(path, where, point)
        violations_sum += point.get("audit_violations", 0)
        if "timeseries" in point:
            validate_timeseries(path, point["timeseries"],
                                f"{where}.timeseries")
            ts_points += 1
            ts_windows += len(point["timeseries"]["windows"])
    for axis, values in axes.items():
        table = doc["tables"].get(f"by_{axis}")
        if not isinstance(table, list):
            fail(path, f"tables missing 'by_{axis}' for swept axis")
        if len(table) != len(values):
            fail(path, f"table 'by_{axis}' has {len(table)} rows for "
                       f"{len(values)} axis values")
        if sum(row.get("points", 0) for row in table) != grid - failed:
            fail(path, f"table 'by_{axis}' groups don't cover the grid")
    # Telemetry rollup: present iff a point carried a series, and the
    # rollup must agree with the per-point evidence.
    if ts_points:
        rollup = doc.get("timeseries")
        if not isinstance(rollup, dict):
            fail(path, "points carry timeseries but the report has no "
                       "'timeseries' rollup")
        if rollup.get("points_with_timeseries") != ts_points:
            fail(path, f"timeseries rollup says "
                       f"{rollup.get('points_with_timeseries')} points, "
                       f"{ts_points} points carry a series")
        if rollup.get("windows_total") != ts_windows:
            fail(path, f"timeseries rollup says "
                       f"{rollup.get('windows_total')} windows, points sum "
                       f"to {ts_windows}")
    elif "timeseries" in doc:
        fail(path, "report has a timeseries rollup but no point carries one")
    audit = doc["audit"]
    for key in ("violations", "conflicts_detected", "checks",
                "points_with_violations"):
        if not isinstance(audit.get(key), int) or audit[key] < 0:
            fail(path, f"audit.{key} is not a non-negative int")
    if audit["violations"] != violations_sum:
        fail(path, f"audit rollup says {audit['violations']} violations, "
                   f"points sum to {violations_sum}")
    if failed:
        fail(path, f"{failed} point(s) recorded an execution error")
    if audit["violations"] > 0:
        fail(path, f"audit rollup reports {audit['violations']} "
                   f"conflict-freedom violation(s) — the CFM invariant broke")
    print(f"{path}: ok — campaign {doc['name']!r}, {len(points)} points over "
          f"{len(axes)} axes, {len(doc['tables'])} tables, "
          f"{len(doc['stats'])} stats, audit checks={audit['checks']}")


SERVE_REQUIRED = ("schema", "name", "params", "metrics", "counters", "stats",
                  "histograms", "tables")
SERVE_METRICS = ("cycles", "offered", "accepted", "rejected", "completed",
                 "failed", "retried", "unfinished", "shed_fraction",
                 "slo_cycles", "slo_within", "slo_attainment",
                 "goodput_attainment", "offered_rate", "completed_rate",
                 "latency_p50", "latency_p95", "latency_p99", "latency_p999",
                 "latency_mean", "latency_max")


def validate_serve(path, doc):
    """A cfm-serve-report/v1 document from cfm_serve: admission arithmetic
    must balance, the SLO section must be present and sane, and the latency
    percentiles must exist and be ordered.  An audit section with
    violations fails via the shared audit validator."""
    for key in SERVE_REQUIRED:
        if key not in doc:
            fail(path, f"missing required key '{key}'")
    if not isinstance(doc["name"], str) or not doc["name"]:
        fail(path, "name must be a non-empty string")
    metrics = doc["metrics"]
    if not isinstance(metrics, dict):
        fail(path, "'metrics' is not an object")
    for key in SERVE_METRICS:
        if key not in metrics:
            fail(path, f"metrics missing '{key}' (no SLO / latency section "
                       f"means the serve run did not report)")
        check_number(path, f"metrics.{key}", metrics[key])
    m = metrics
    if m["offered"] != m["accepted"] + m["rejected"]:
        fail(path, f"admission arithmetic broken: offered {m['offered']} != "
                   f"accepted {m['accepted']} + rejected {m['rejected']}")
    if m["accepted"] != m["completed"] + m["failed"] + m["unfinished"]:
        fail(path, f"service arithmetic broken: accepted {m['accepted']} != "
                   f"completed {m['completed']} + failed {m['failed']} + "
                   f"unfinished {m['unfinished']}")
    if not 0.0 <= m["slo_attainment"] <= 1.0:
        fail(path, f"slo_attainment {m['slo_attainment']} outside [0, 1]")
    if not 0.0 <= m["shed_fraction"] <= 1.0:
        fail(path, f"shed_fraction {m['shed_fraction']} outside [0, 1]")
    if m["slo_within"] > m["completed"]:
        fail(path, "slo_within exceeds completed")
    if not (m["latency_p50"] <= m["latency_p95"] <= m["latency_p99"]
            <= m["latency_p999"]):
        fail(path, "latency percentiles are not nondecreasing")
    if "latency" not in doc["histograms"]:
        fail(path, "histograms missing 'latency'")
    extras = []
    if "audit" in doc:
        validate_audit(path, doc["audit"])
        extras.append(f"audit ({doc['audit']['checks']} checks)")
    if "timeseries" in doc:
        validate_timeseries(path, doc["timeseries"], "timeseries")
        extras.append(
            f"timeseries ({len(doc['timeseries']['windows'])} windows)")
    if "recovery" in doc.get("tables", {}):
        validate_recovery(path, doc["tables"]["recovery"], "tables.recovery")
        extras.append(f"recovery ({len(doc['tables']['recovery'])} faults)")
    if "anomalies" in doc:
        validate_anomalies(path, doc["anomalies"], "anomalies",
                           FAIL_ON_ANOMALIES)
        extras.append(f"anomalies ({doc['anomalies']['count']})")
    print(f"{path}: ok — serve run {doc['name']!r}: offered={m['offered']}, "
          f"completed={m['completed']}, rejected={m['rejected']}, "
          f"slo_attainment={m['slo_attainment']:.4f}, "
          f"p99={m['latency_p99']}"
          + "".join(f", {e}" for e in extras))


FAIL_ON_ANOMALIES = False


def main(argv):
    global FAIL_ON_ANOMALIES
    paths = []
    for arg in argv[1:]:
        if arg == "--fail-on-anomalies":
            FAIL_ON_ANOMALIES = True
        else:
            paths.append(arg)
    if not paths:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in paths:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
