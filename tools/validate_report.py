#!/usr/bin/env python3
"""Validate a cfm-bench-report/v1 JSON document.

Usage: validate_report.py REPORT.json [REPORT.json ...]

Checks the schema marker, the required top-level sections, and the shape
of each statistics container (stats need the six moment fields,
histograms need buckets/total/quantiles, tables must be lists of
objects).  Exits nonzero on the first invalid report — used by the CI
bench-reports job and handy locally after `--json-out`.
"""
import json
import sys

SCHEMA = "cfm-bench-report/v1"
REQUIRED = ("schema", "name", "params", "metrics", "counters", "stats",
            "histograms", "tables")
STAT_FIELDS = ("count", "mean", "min", "max", "stddev", "sum")


def fail(path, msg):
    print(f"{path}: INVALID — {msg}", file=sys.stderr)
    sys.exit(1)


def check_number(path, where, value):
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        fail(path, f"{where} is not a number (got {type(value).__name__})")


def validate(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict):
        fail(path, "top level is not an object")
    for key in REQUIRED:
        if key not in doc:
            fail(path, f"missing required key '{key}'")
    if doc["schema"] != SCHEMA:
        fail(path, f"schema is {doc['schema']!r}, want {SCHEMA!r}")
    if not isinstance(doc["name"], str) or not doc["name"]:
        fail(path, "name must be a non-empty string")
    for section in ("params", "metrics", "counters", "stats", "histograms",
                    "tables"):
        if not isinstance(doc[section], dict):
            fail(path, f"'{section}' is not an object")
    for name, counters in doc["counters"].items():
        if not isinstance(counters, dict):
            fail(path, f"counter set '{name}' is not an object")
        for cname, value in counters.items():
            if not isinstance(value, int) or value < 0:
                fail(path, f"counter {name}.{cname} is not a non-negative int")
    for name, stat in doc["stats"].items():
        if not isinstance(stat, dict):
            fail(path, f"stat '{name}' is not an object")
        for field in STAT_FIELDS:
            if field not in stat:
                fail(path, f"stat '{name}' missing '{field}'")
            check_number(path, f"stat {name}.{field}", stat[field])
    for name, hist in doc["histograms"].items():
        for field in ("bucket_width", "buckets", "overflow", "total",
                      "quantiles"):
            if field not in hist:
                fail(path, f"histogram '{name}' missing '{field}'")
        if not isinstance(hist["buckets"], list):
            fail(path, f"histogram '{name}' buckets is not a list")
        if not isinstance(hist["quantiles"], dict):
            fail(path, f"histogram '{name}' quantiles is not an object")
    for name, rows in doc["tables"].items():
        if not isinstance(rows, list):
            fail(path, f"table '{name}' is not a list")
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                fail(path, f"table '{name}' row {i} is not an object")
    n_rows = sum(len(r) for r in doc["tables"].values())
    print(f"{path}: ok — name={doc['name']!r}, "
          f"{len(doc['params'])} params, {len(doc['metrics'])} metrics, "
          f"{len(doc['tables'])} tables ({n_rows} rows), "
          f"{len(doc['stats'])} stats, {len(doc['histograms'])} histograms")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
