// cfm_campaign — run a scenario file's sweep grid as one schedulable,
// cacheable unit of work, on one process or sharded across many.
//
//   cfm_campaign <scenario.json> [options]
//
//   --json-out <path>   write the cfm-campaign-report/v1 document
//   --cache-dir <dir>   result cache location (default .cfm-cache)
//   --no-cache          disable the result cache entirely
//   --jobs <n>          concurrent point executions (default: hardware)
//   --workers <n>       shard across n point-runner subprocesses that
//                       claim points via lease files in the cache dir;
//                       crash-tolerant (stale leases are stolen) and
//                       byte-identical to the single-process report
//   --worker            run one worker loop in the foreground instead:
//                       claim + run + publish until the grid is done.
//                       Point several at one --cache-dir (any hosts
//                       sharing the filesystem) to shard by hand
//   --lease-ttl <sec>   staleness horizon for worker leases (default 60;
//                       fractional seconds accepted).  Held leases are
//                       heartbeat-refreshed, so only dead workers' leases
//                       age past it
//   --dry-run           expand + validate the grid, print it, run nothing
//   --quiet             suppress per-point progress lines
//
// Exit codes: 0 clean, 2 usage / spec error, 3 audit-violation rollup
// (a conflict-free point broke the paper's invariant), 4 a point failed
// after its bounded retries (in --worker mode: any point in the shared
// campaign carries a failure verdict), 1 the report artifact could not
// be written or an I/O fault stopped the run.
//
// The summary line ("N points — E executed, C cached, ...") is machine-
// readable on purpose: CI greps it to assert a fully cached second pass.
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <limits>
#include <string>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "campaign/campaign.hpp"
#include "campaign/lease.hpp"

namespace {

struct CliOptions {
  std::string scenario_path;
  std::string json_out;
  std::string cache_dir = ".cfm-cache";
  unsigned jobs = 0;
  unsigned workers = 0;  ///< 0 = in-process executor
  bool worker_mode = false;
  std::chrono::milliseconds lease_ttl{60000};
  bool dry_run = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <scenario.json> [--json-out <path>] "
               "[--cache-dir <dir>] [--no-cache] [--jobs <n>] "
               "[--workers <n>] [--worker] [--lease-ttl <seconds>] "
               "[--dry-run] [--quiet]\n",
               argv0);
  std::exit(code);
}

/// Strict non-negative integer parse for count flags.  `--jobs abc`
/// must not silently become 0 (= hardware default) and `--jobs -1` must
/// not wrap to four billion: anything but pure digits in range exits 2.
unsigned parse_count(const char* argv0, const char* flag,
                     const std::string& text) {
  bool digits = !text.empty();
  for (const char ch : text) {
    if (std::isdigit(static_cast<unsigned char>(ch)) == 0) digits = false;
  }
  if (!digits) {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n",
                 argv0, flag, text.c_str());
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size() ||
      value > std::numeric_limits<unsigned>::max()) {
    std::fprintf(stderr, "%s: %s value '%s' is out of range\n", argv0, flag,
                 text.c_str());
    std::exit(2);
  }
  return static_cast<unsigned>(value);
}

/// Strict positive seconds parse (fractional allowed) for --lease-ttl.
std::chrono::milliseconds parse_seconds(const char* argv0, const char* flag,
                                        const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (errno == ERANGE || end != text.c_str() + text.size() || text.empty() ||
      !std::isfinite(value) || value <= 0.0 || value > 86400.0 * 365.0) {
    std::fprintf(stderr, "%s: %s expects a positive number of seconds, "
                 "got '%s'\n",
                 argv0, flag, text.c_str());
    std::exit(2);
  }
  const auto ms = static_cast<long long>(value * 1000.0);
  return std::chrono::milliseconds(ms > 0 ? ms : 1);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out") {
      opts.json_out = value_of(i, "--json-out");
    } else if (arg == "--cache-dir") {
      opts.cache_dir = value_of(i, "--cache-dir");
    } else if (arg == "--no-cache") {
      opts.cache_dir.clear();
    } else if (arg == "--jobs") {
      opts.jobs = parse_count(argv[0], "--jobs", value_of(i, "--jobs"));
    } else if (arg == "--workers") {
      opts.workers =
          parse_count(argv[0], "--workers", value_of(i, "--workers"));
      if (opts.workers == 0) {
        std::fprintf(stderr, "%s: --workers must be >= 1\n", argv[0]);
        std::exit(2);
      }
    } else if (arg == "--worker") {
      opts.worker_mode = true;
    } else if (arg == "--lease-ttl") {
      opts.lease_ttl =
          parse_seconds(argv[0], "--lease-ttl", value_of(i, "--lease-ttl"));
    } else if (arg == "--dry-run") {
      opts.dry_run = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0], 2);
    } else if (opts.scenario_path.empty()) {
      opts.scenario_path = arg;
    } else {
      usage(argv[0], 2);
    }
  }
  if (opts.scenario_path.empty()) usage(argv[0], 2);
  if (opts.worker_mode && opts.workers != 0) {
    std::fprintf(stderr, "%s: --worker and --workers are mutually "
                 "exclusive\n",
                 argv[0]);
    std::exit(2);
  }
  if ((opts.worker_mode || opts.workers != 0) && opts.cache_dir.empty()) {
    std::fprintf(stderr, "%s: worker execution requires a result cache "
                 "(drop --no-cache)\n",
                 argv[0]);
    std::exit(2);
  }
  return opts;
}

/// Path to this executable for re-execing worker subprocesses.
std::string self_exe(const char* argv0) {
#ifndef _WIN32
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n > 0) {
    buf[n] = '\0';
    return buf;
  }
#endif
  return argv0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfm;
  const auto cli = parse_cli(argc, argv);

  campaign::Scenario scenario;
  try {
    scenario = campaign::Scenario::load_file(cli.scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
    return 2;
  }

  if (cli.dry_run) {
    std::vector<campaign::PointSpec> points;
    try {
      points = scenario.expand();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
      return 2;
    }
    campaign::ResultCache cache(cli.cache_dir);
    campaign::LeaseDir leases(cli.cache_dir.empty() ? "." : cli.cache_dir,
                              cli.lease_ttl);
    std::size_t hits = 0;
    for (const auto& point : points) {
      const bool hit = cache.load(point).has_value();
      const bool leased =
          !cli.cache_dir.empty() && leases.leased(point.cache_key());
      hits += hit ? 1 : 0;
      std::printf("%s %s%s%s\n", point.cache_key().c_str(),
                  point.params.dump().c_str(), hit ? " [cached]" : "",
                  leased ? " [leased]" : "");
    }
    std::printf("campaign '%s' (dry run): %zu points, %zu already cached\n",
                scenario.name().c_str(), points.size(), hits);
    return 0;
  }

  if (cli.worker_mode) {
    campaign::WorkerOptions options;
    options.cache_dir = cli.cache_dir;
    options.lease_ttl = cli.lease_ttl;
    if (!cli.quiet) {
      options.progress = [](const std::string& line) {
        std::printf("%s\n", line.c_str());
        std::fflush(stdout);
      };
    }
    try {
      const int code = campaign::run_worker(scenario, options);
      if (!cli.quiet) {
        std::printf("worker done (%s)\n",
                    code == 0 ? "grid complete" : "grid has failed points");
      }
      return code;
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
      return 2;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
      return 1;
    }
  }

  campaign::CampaignResult result;
  try {
    if (cli.workers != 0) {
      campaign::DistributedOptions options;
      options.cache_dir = cli.cache_dir;
      options.workers = cli.workers;
      options.lease_ttl = cli.lease_ttl;
      options.spawn_argv = {self_exe(argv[0]), cli.scenario_path};
      if (!cli.quiet) {
        options.progress = [](const std::string& line) {
          std::printf("%s\n", line.c_str());
          std::fflush(stdout);
        };
      }
      result = campaign::run_campaign_workers(scenario, options);
    } else {
      campaign::CampaignOptions options;
      options.cache_dir = cli.cache_dir;
      options.jobs = cli.jobs;
      if (!cli.quiet) {
        options.progress = [](const std::string& line) {
          std::printf("%s\n", line.c_str());
          std::fflush(stdout);
        };
      }
      result = campaign::run_campaign(scenario, options);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
    return 2;
  }

  std::printf("campaign '%s': %zu points — %zu executed, %zu cached, "
              "%zu failed; audit violations: %llu\n",
              scenario.name().c_str(), result.points, result.executed,
              result.cached, result.failed,
              static_cast<unsigned long long>(result.audit_violations));

  if (!cli.json_out.empty()) {
    std::ofstream os(cli.json_out);
    if (os) {
      result.report.dump_to(os, 2);
      os << '\n';
    }
    if (!os) {
      std::fprintf(stderr, "error: cannot write report to '%s'\n",
                   cli.json_out.c_str());
      return 1;
    }
    std::printf("report written to %s\n", cli.json_out.c_str());
  }
  return result.exit_code();
}
