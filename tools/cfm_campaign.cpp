// cfm_campaign — run a scenario file's sweep grid as one schedulable,
// cacheable unit of work.
//
//   cfm_campaign <scenario.json> [options]
//
//   --json-out <path>   write the cfm-campaign-report/v1 document
//   --cache-dir <dir>   result cache location (default .cfm-cache)
//   --no-cache          disable the result cache entirely
//   --jobs <n>          concurrent point executions (default: hardware)
//   --dry-run           expand + validate the grid, print it, run nothing
//   --quiet             suppress per-point progress lines
//
// Exit codes: 0 clean, 2 usage / spec error, 3 audit-violation rollup
// (a conflict-free point broke the paper's invariant), 4 a point failed
// after its bounded retries, 1 the report artifact could not be written.
//
// The summary line ("N points — E executed, C cached, ...") is machine-
// readable on purpose: CI greps it to assert a fully cached second pass.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>

#include "campaign/campaign.hpp"

namespace {

struct CliOptions {
  std::string scenario_path;
  std::string json_out;
  std::string cache_dir = ".cfm-cache";
  unsigned jobs = 0;
  bool dry_run = false;
  bool quiet = false;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(stderr,
               "usage: %s <scenario.json> [--json-out <path>] "
               "[--cache-dir <dir>] [--no-cache] [--jobs <n>] [--dry-run] "
               "[--quiet]\n",
               argv0);
  std::exit(code);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json-out") {
      opts.json_out = value_of(i, "--json-out");
    } else if (arg == "--cache-dir") {
      opts.cache_dir = value_of(i, "--cache-dir");
    } else if (arg == "--no-cache") {
      opts.cache_dir.clear();
    } else if (arg == "--jobs") {
      opts.jobs = static_cast<unsigned>(
          std::strtoul(value_of(i, "--jobs").c_str(), nullptr, 10));
    } else if (arg == "--dry-run") {
      opts.dry_run = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      usage(argv[0], 2);
    } else if (opts.scenario_path.empty()) {
      opts.scenario_path = arg;
    } else {
      usage(argv[0], 2);
    }
  }
  if (opts.scenario_path.empty()) usage(argv[0], 2);
  return opts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfm;
  const auto cli = parse_cli(argc, argv);

  campaign::Scenario scenario;
  try {
    scenario = campaign::Scenario::load_file(cli.scenario_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
    return 2;
  }

  if (cli.dry_run) {
    std::vector<campaign::PointSpec> points;
    try {
      points = scenario.expand();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
      return 2;
    }
    campaign::ResultCache cache(cli.cache_dir);
    std::size_t hits = 0;
    for (const auto& point : points) {
      const bool hit = cache.load(point).has_value();
      hits += hit ? 1 : 0;
      std::printf("%s %s%s\n", point.cache_key().c_str(),
                  point.params.dump().c_str(), hit ? " [cached]" : "");
    }
    std::printf("campaign '%s' (dry run): %zu points, %zu already cached\n",
                scenario.name().c_str(), points.size(), hits);
    return 0;
  }

  campaign::CampaignOptions options;
  options.cache_dir = cli.cache_dir;
  options.jobs = cli.jobs;
  if (!cli.quiet) {
    options.progress = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
      std::fflush(stdout);
    };
  }

  campaign::CampaignResult result;
  try {
    result = campaign::run_campaign(scenario, options);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", cli.scenario_path.c_str(), e.what());
    return 2;
  }

  std::printf("campaign '%s': %zu points — %zu executed, %zu cached, "
              "%zu failed; audit violations: %llu\n",
              scenario.name().c_str(), result.points, result.executed,
              result.cached, result.failed,
              static_cast<unsigned long long>(result.audit_violations));

  if (!cli.json_out.empty()) {
    std::ofstream os(cli.json_out);
    if (os) {
      result.report.dump_to(os, 2);
      os << '\n';
    }
    if (!os) {
      std::fprintf(stderr, "error: cannot write report to '%s'\n",
                   cli.json_out.c_str());
      return 1;
    }
    std::printf("report written to %s\n", cli.json_out.c_str());
  }
  return result.exit_code();
}
