// cfm_serve — the CFM-as-a-service front end (DESIGN.md §13).
//
//   cfm_serve [options] [--requests <file>]
//
// Request sources (exactly one):
//   --requests <file>   replay a request file (protocol.hpp grammar),
//                       arrival-stamped by the open-loop process, then
//                       drain and report;
//   --count <n>         serve n synthetic requests (--blocks,
//                       --write-frac / --swap-frac / --lock-frac shape
//                       the mix), same pipeline;
//   (stdin)             with neither flag, an interactive command loop:
//                       request lines are submitted as they arrive, and
//                       dot-directives control the server:
//                         .run <cycles>   advance the engine
//                         .drain          run until quiescent (bounded)
//                         .stats          current telemetry window snapshot
//                                         (falls back to lifetime totals
//                                         with --no-telemetry)
//                         .metrics        Prometheus text exposition (live
//                                         scrape of counters / gauges /
//                                         latency quantiles)
//                         .report         print the JSON report so far
//                         .quit           drain, report, exit
//
// Serving options:
//   --load <shape[:k=v,...]>  poisson | bursty | diurnal (arrival.hpp)
//   --slo <cycles>            latency SLO (default 4*beta)
//   --queue-depth <n>         admission bound (default 4*processors)
//   --processors <c> --bank-cycle <n> --seed <s>
//   --fault-plan <plan>       sim::FaultPlan grammar
//   --spares <n>              spare banks for dead-bank remap
//   --audit                   attach the conflict-freedom auditor
//   --threads <n>             engine threads (results identical)
//   --fast-path <0|1> --max-span <n>   engine tuning override
//   --json-out <path>         write the cfm-serve-report/v1 document
//   --metrics-out <path>      write the final Prometheus text exposition
//   --no-telemetry            disable the flight recorder
//   --telemetry-window <W>    sampling window in cycles (default 8*beta)
//   --telemetry-capacity <n>  flight-recorder bound before downsampling
//   --anomaly-exit            exit 4 when the anomaly scan has findings
//   --quiet                   suppress the progress summary
//
// Exit codes: 0 clean, 2 usage / input error, 3 audit violations,
// 4 anomalies found (with --anomaly-exit), 1 the report artifact could
// not be written.
//
// The summary line ("served N requests — ...") is machine-readable on
// purpose: the serve-smoke CI job greps it.
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>

#include "serve/server.hpp"
#include "sim/engine.hpp"

namespace {

struct CliOptions {
  std::string requests_path;
  std::string json_out;
  std::string metrics_out;
  bool anomaly_exit = false;
  cfm::serve::ServeOptions serve;
  std::size_t count = 0;
  std::uint64_t blocks = 4096;
  double write_frac = 0.25;
  double swap_frac = 0.05;
  double lock_frac = 0.05;
  bool quiet = false;
  bool tuning_set = false;
  cfm::sim::EngineTuning tuning;
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(
      stderr,
      "usage: %s [--requests <file> | --count <n>] [--load <shape[:k=v,..]>]\n"
      "  [--slo <cycles>] [--queue-depth <n>] [--processors <c>]\n"
      "  [--bank-cycle <n>] [--seed <s>] [--threads <n>] [--fault-plan <p>]\n"
      "  [--spares <n>] [--audit] [--blocks <n>] [--write-frac <f>]\n"
      "  [--swap-frac <f>] [--lock-frac <f>] [--fast-path <0|1>]\n"
      "  [--max-span <n>] [--json-out <path>] [--metrics-out <path>]\n"
      "  [--no-telemetry] [--telemetry-window <W>]\n"
      "  [--telemetry-capacity <n>] [--anomaly-exit] [--quiet]\n"
      "with no request source, reads a request / directive stream on stdin\n",
      argv0);
  std::exit(code);
}

/// Strict unsigned parse for serving flags: every character must be a
/// digit (so "abc", "-1", "12x" and "" are all usage errors, not silent
/// zeros) and the value must fit.  Matches cfm_campaign's flag parsing.
std::uint64_t parse_u64(const char* argv0, const char* flag,
                        const std::string& text) {
  bool digits = !text.empty();
  for (const char ch : text) {
    if (std::isdigit(static_cast<unsigned char>(ch)) == 0) digits = false;
  }
  if (!digits) {
    std::fprintf(stderr, "%s: %s expects a non-negative integer, got '%s'\n",
                 argv0, flag, text.c_str());
    std::exit(2);
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (errno == ERANGE || end != text.c_str() + text.size()) {
    std::fprintf(stderr, "%s: %s value '%s' is out of range\n", argv0, flag,
                 text.c_str());
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value);
}

/// parse_u64 with an additional ceiling, for flags narrowed to 32 bits
/// (processors, bank cycle, spares) or to a reasonable thread count.
std::uint64_t parse_u64_max(const char* argv0, const char* flag,
                            const std::string& text, std::uint64_t max) {
  const auto value = parse_u64(argv0, flag, text);
  if (value > max) {
    std::fprintf(stderr, "%s: %s value '%s' is out of range (max %llu)\n",
                 argv0, flag, text.c_str(),
                 static_cast<unsigned long long>(max));
    std::exit(2);
  }
  return value;
}

/// Strict fraction parse: a finite decimal number, fully consumed.  The
/// fraction flags additionally require [0, 1].
double parse_frac(const char* argv0, const char* flag,
                  const std::string& text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (text.empty() || end != text.c_str() + text.size() || errno == ERANGE ||
      !(value >= 0.0 && value <= 1.0)) {
    std::fprintf(stderr, "%s: %s expects a fraction in [0, 1], got '%s'\n",
                 argv0, flag, text.c_str());
    std::exit(2);
  }
  return value;
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  const auto value_of = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: missing value for %s\n", argv[0], flag);
      std::exit(2);
    }
    return argv[++i];
  };
  const auto as_u64 = [&](const char* flag, const std::string& v) {
    return parse_u64(argv[0], flag, v);
  };
  const auto as_u32 = [&](const char* flag, const std::string& v) {
    return static_cast<std::uint32_t>(parse_u64_max(
        argv[0], flag, v, std::numeric_limits<std::uint32_t>::max()));
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--requests") {
        opts.requests_path = value_of(i, "--requests");
      } else if (arg == "--json-out") {
        opts.json_out = value_of(i, "--json-out");
      } else if (arg == "--metrics-out") {
        opts.metrics_out = value_of(i, "--metrics-out");
      } else if (arg == "--no-telemetry") {
        opts.serve.telemetry = false;
      } else if (arg == "--telemetry-window") {
        opts.serve.telemetry_window =
            as_u64("--telemetry-window", value_of(i, "--telemetry-window"));
      } else if (arg == "--telemetry-capacity") {
        opts.serve.telemetry_capacity =
            static_cast<std::size_t>(as_u64("--telemetry-capacity",
                                            value_of(i, "--telemetry-capacity")));
      } else if (arg == "--anomaly-exit") {
        opts.anomaly_exit = true;
      } else if (arg == "--load") {
        opts.serve.arrival =
            cfm::serve::ArrivalConfig::parse(value_of(i, "--load"));
      } else if (arg == "--slo") {
        opts.serve.slo = as_u64("--slo", value_of(i, "--slo"));
      } else if (arg == "--queue-depth") {
        opts.serve.queue_depth = static_cast<std::size_t>(
            as_u64("--queue-depth", value_of(i, "--queue-depth")));
      } else if (arg == "--processors") {
        opts.serve.processors =
            as_u32("--processors", value_of(i, "--processors"));
      } else if (arg == "--bank-cycle") {
        opts.serve.bank_cycle =
            as_u32("--bank-cycle", value_of(i, "--bank-cycle"));
      } else if (arg == "--seed") {
        opts.serve.seed = as_u64("--seed", value_of(i, "--seed"));
      } else if (arg == "--threads") {
        opts.serve.threads = static_cast<unsigned>(
            parse_u64_max(argv[0], "--threads", value_of(i, "--threads"),
                          std::numeric_limits<unsigned>::max()));
      } else if (arg == "--fault-plan") {
        opts.serve.fault_plan = value_of(i, "--fault-plan");
      } else if (arg == "--spares") {
        opts.serve.spare_banks = as_u32("--spares", value_of(i, "--spares"));
      } else if (arg == "--audit") {
        opts.serve.audit = true;
      } else if (arg == "--count") {
        opts.count =
            static_cast<std::size_t>(as_u64("--count", value_of(i, "--count")));
      } else if (arg == "--blocks") {
        opts.blocks = as_u64("--blocks", value_of(i, "--blocks"));
      } else if (arg == "--write-frac") {
        opts.write_frac =
            parse_frac(argv[0], "--write-frac", value_of(i, "--write-frac"));
      } else if (arg == "--swap-frac") {
        opts.swap_frac =
            parse_frac(argv[0], "--swap-frac", value_of(i, "--swap-frac"));
      } else if (arg == "--lock-frac") {
        opts.lock_frac =
            parse_frac(argv[0], "--lock-frac", value_of(i, "--lock-frac"));
      } else if (arg == "--fast-path") {
        opts.tuning.fast_path =
            parse_u64_max(argv[0], "--fast-path", value_of(i, "--fast-path"),
                          1) != 0;
        opts.tuning_set = true;
      } else if (arg == "--max-span") {
        opts.tuning.max_span = as_u64("--max-span", value_of(i, "--max-span"));
        opts.tuning_set = true;
      } else if (arg == "--quiet") {
        opts.quiet = true;
      } else {
        usage(argv[0], 2);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s: %s\n", argv[0], arg.c_str(), e.what());
      std::exit(2);
    }
  }
  if (!opts.requests_path.empty() && opts.count != 0) {
    std::fprintf(stderr, "%s: --requests and --count are exclusive\n",
                 argv[0]);
    std::exit(2);
  }
  return opts;
}

void print_summary(const cfm::serve::Server& server) {
  const auto& st = server.stats();
  const auto violations =
      server.auditor() != nullptr ? server.auditor()->violations() : 0;
  std::printf(
      "served %llu requests — %llu completed, %llu rejected, %llu failed, "
      "%llu unfinished; slo_attainment %.4f; audit violations: %llu\n",
      static_cast<unsigned long long>(st.offered),
      static_cast<unsigned long long>(st.completed),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.failed),
      static_cast<unsigned long long>(server.outstanding()),
      st.completed == 0
          ? 1.0
          : static_cast<double>(st.within_slo) /
                static_cast<double>(st.completed),
      static_cast<unsigned long long>(violations));
  std::fflush(stdout);
}

/// `.stats`: the *current telemetry window*, not lifetime averages — a
/// mid-run scrape should show what the machine is doing now.  Falls back
/// to the cumulative summary when telemetry is off.
void print_window_stats(const cfm::serve::Server& server) {
  const auto live = server.live_stats_json();
  if (live.is_null()) {
    print_summary(server);
    return;
  }
  const auto& win = live.at("window");
  const auto& counters = win.at("counters");
  const auto& latency = win.at("hist").at("latency");
  const auto& gauges = live.at("gauges");
  std::printf(
      "window @%llu (start %llu): %llu offered, %llu completed, %llu shed, "
      "%llu retried; p99 %.0f; queue %.0f, in service %.0f\n",
      static_cast<unsigned long long>(live.at("cycle").as_uint()),
      static_cast<unsigned long long>(win.at("start").as_uint()),
      static_cast<unsigned long long>(counters.at("offered").as_uint()),
      static_cast<unsigned long long>(counters.at("completed").as_uint()),
      static_cast<unsigned long long>(counters.at("rejected").as_uint()),
      static_cast<unsigned long long>(counters.at("retried").as_uint()),
      latency.at("p99").as_double(), gauges.at("queue_depth").as_double(),
      gauges.at("in_service").as_double());
  std::fflush(stdout);
}

/// Interactive mode: request lines are submitted as they arrive; dot
/// directives drive the engine.  Ends at .quit or EOF (both drain).
int run_command_loop(cfm::serve::Server& server, std::istream& in,
                     bool quiet) {
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] == '.') {
      std::istringstream directive(line.substr(1));
      std::string verb;
      directive >> verb;
      if (verb == "run") {
        cfm::sim::Cycle cycles = 0;
        directive >> cycles;
        server.run(cycles);
      } else if (verb == "drain") {
        server.drain();
      } else if (verb == "stats") {
        print_window_stats(server);
      } else if (verb == "metrics") {
        std::fputs(server.prometheus_text().c_str(), stdout);
        std::fflush(stdout);
      } else if (verb == "report") {
        std::cout << server.report_json().dump(2) << '\n';
      } else if (verb == "quit") {
        break;
      } else {
        std::fprintf(stderr, "stdin:%zu: unknown directive '.%s'\n", lineno,
                     verb.c_str());
        return 2;
      }
      continue;
    }
    try {
      if (const auto req = cfm::serve::parse_request_line(line)) {
        server.submit(*req);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "stdin:%zu: %s\n", lineno, e.what());
      return 2;
    }
    if (!quiet && lineno % 4096 == 0) print_summary(server);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cfm;
  const auto cli = parse_cli(argc, argv);
  if (cli.tuning_set) sim::set_engine_tuning(cli.tuning);

  std::unique_ptr<serve::Server> server;
  try {
    server = std::make_unique<serve::Server>(cli.serve);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  int rc = 0;
  try {
    if (!cli.requests_path.empty()) {
      server->submit(serve::load_request_file(cli.requests_path));
      server->drain();
    } else if (cli.count != 0) {
      server->submit(serve::synth_requests(cli.count, cli.write_frac,
                                           cli.swap_frac, cli.lock_frac,
                                           cli.blocks, cli.serve.seed));
      server->drain();
    } else {
      rc = run_command_loop(*server, std::cin, cli.quiet);
      if (rc != 0) return rc;
      server->drain();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  if (!cli.quiet) print_summary(*server);

  if (!cli.json_out.empty()) {
    std::ofstream os(cli.json_out);
    if (os) {
      server->report_json().dump_to(os, 2);
      os << '\n';
    }
    if (!os) {
      std::fprintf(stderr, "error: cannot write report to '%s'\n",
                   cli.json_out.c_str());
      return 1;
    }
    if (!cli.quiet) {
      std::printf("report written to %s\n", cli.json_out.c_str());
    }
  }

  if (!cli.metrics_out.empty()) {
    std::ofstream os(cli.metrics_out);
    if (os) os << server->prometheus_text();
    if (!os) {
      std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                   cli.metrics_out.c_str());
      return 1;
    }
    if (!cli.quiet) {
      std::printf("metrics written to %s\n", cli.metrics_out.c_str());
    }
  }

  const auto* auditor = server->auditor();
  if (auditor != nullptr && auditor->violations() != 0) return 3;
  if (cli.anomaly_exit && server->telemetry() != nullptr) {
    const auto report = server->report_json();
    const auto count = report.at("anomalies").at("count").as_uint();
    if (count != 0) {
      std::fprintf(stderr, "anomaly gate: %llu finding(s) in the report\n",
                   static_cast<unsigned long long>(count));
      return 4;
    }
  }
  return rc;
}
