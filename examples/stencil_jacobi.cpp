// A realistic shared-memory workload: red-black Gauss–Seidel relaxation
// on an N x N grid, strip-partitioned across processors — the kind of
// high-demand scientific computation the paper's introduction motivates.
//
// Each grid row is one memory block.  Every sweep, a processor updates
// its own rows (stores) after reading the neighbouring boundary rows
// (loads) — so boundary blocks ping-pong between owners, exercising the
// whole coherence protocol: fills, ownership transfers, triggered
// write-backs, invalidations.  The same access stream is replayed on the
// CFM cache protocol and on the snoopy bus, cycle for cycle.
#include <cstdio>
#include <vector>

#include "cache/cfm_protocol.hpp"
#include "cache/snoopy.hpp"

using namespace cfm;
using sim::Cycle;

namespace {

constexpr std::uint32_t kProcs = 8;
constexpr std::uint32_t kRows = 64;   // one block per row
constexpr int kSweeps = 6;

/// One processor's access script for a sweep: read the boundary rows of
/// the neighbouring strips, then store to every row it owns.
struct Script {
  struct Step {
    bool is_store = false;
    std::uint64_t row = 0;
  };
  std::vector<Step> steps;
};

std::vector<Script> build_scripts(int parity) {
  std::vector<Script> scripts(kProcs);
  const std::uint32_t strip = kRows / kProcs;
  for (std::uint32_t p = 0; p < kProcs; ++p) {
    auto& sc = scripts[p];
    const std::uint32_t lo = p * strip;
    const std::uint32_t hi = lo + strip;
    if (lo > 0) sc.steps.push_back({false, lo - 1});      // upper boundary
    if (hi < kRows) sc.steps.push_back({false, hi});      // lower boundary
    for (std::uint32_t r = lo; r < hi; ++r) {
      if (static_cast<int>(r) % 2 == parity) sc.steps.push_back({true, r});
    }
  }
  return scripts;
}

/// Drives the scripts to completion on any system with the common
/// load/store/take_result/processor_idle API; returns total cycles.
template <typename Sys>
Cycle run_sweeps(Sys& sys) {
  Cycle t = 0;
  for (int sweep = 0; sweep < kSweeps; ++sweep) {
    const auto scripts = build_scripts(sweep % 2);
    std::vector<std::size_t> pos(kProcs, 0);
    std::vector<std::uint64_t> pending(kProcs, 0);
    bool all_done = false;
    while (!all_done) {
      all_done = true;
      for (std::uint32_t p = 0; p < kProcs; ++p) {
        if (pending[p] != 0) {
          if (sys.take_result(pending[p])) pending[p] = 0;
        }
        if (pending[p] == 0 && pos[p] < scripts[p].steps.size() &&
            sys.processor_idle(p)) {
          const auto& step = scripts[p].steps[pos[p]++];
          pending[p] = step.is_store
                           ? sys.store(t, p, step.row, 0, t)
                           : sys.load(t, p, step.row);
        }
        if (pending[p] != 0 || pos[p] < scripts[p].steps.size()) {
          all_done = false;
        }
      }
      sys.tick(t);
      ++t;
    }
  }
  return t;
}

}  // namespace

int main() {
  std::printf("Red-black stencil sweep: %u x %u grid, %u processors, "
              "%d sweeps, one block per row\n\n",
              kRows, kRows, kProcs, kSweeps);

  cache::CfmCacheSystem::Params cp;
  cp.mem = core::CfmConfig::make(kProcs, 1);
  cp.cache_lines = 128;
  cache::CfmCacheSystem cfm_sys(cp);
  const auto cfm_cycles = run_sweeps(cfm_sys);

  cache::SnoopyBus::Params sp;
  sp.processors = kProcs;
  sp.cache_lines = 128;
  sp.block_words = kProcs;
  sp.block_cycles = kProcs;  // block transfer occupies b bus cycles
  cache::SnoopyBus bus_sys(sp);
  const auto bus_cycles = run_sweeps(bus_sys);

  std::printf("%-26s %-12s %-12s\n", "", "CFM protocol", "snoopy bus");
  std::printf("%-26s %-12llu %-12llu\n", "total cycles",
              static_cast<unsigned long long>(cfm_cycles),
              static_cast<unsigned long long>(bus_cycles));
  std::printf("%-26s %-12llu %-12llu\n", "invalidations",
              static_cast<unsigned long long>(
                  cfm_sys.counters().get("invalidations")),
              static_cast<unsigned long long>(
                  bus_sys.counters().get("invalidations")));
  std::printf("%-26s %-12llu %-12s\n", "triggered write-backs",
              static_cast<unsigned long long>(
                  cfm_sys.counters().get("remote_wbs_served")),
              "(snoop flush)");
  std::printf("%-26s %-12s %-12llu\n", "bus busy cycles", "-",
              static_cast<unsigned long long>(bus_sys.bus_busy_cycles()));
  std::printf("%-26s %-12s %-11.0f%%\n", "bus utilization", "-",
              100.0 * static_cast<double>(bus_sys.bus_busy_cycles()) /
                  static_cast<double>(bus_cycles));
  std::printf("\ncoherence sanity: single dirty owner on CFM: %s\n",
              cfm_sys.check_single_dirty_owner() ? "yes" : "VIOLATED");
  std::printf("\nInterior rows stay cached and dirty at their owner across\n"
              "sweeps (write hits, zero traffic); only the strip boundaries\n"
              "move — and on the CFM they move through conflict-free bank\n"
              "tours instead of a serializing bus.\n");
  return 0;
}
