// Data binding over highly overlapped 2-D regions (§6.3.2, Figs 6.6/6.7).
//
// Workers sweep overlapping windows of a shared matrix.  With one
// semaphore for the whole matrix the sweep serializes completely; with
// data binding only *actually overlapping* windows exclude each other,
// and strided (checkerboard) regions never conflict at all.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

#include "binding/runtime.hpp"

using namespace cfm::bind;

namespace {

constexpr std::size_t kN = 64;                 // matrix is kN x kN
constexpr int kSweeps = 60;
constexpr auto kWork = std::chrono::microseconds(30);

std::vector<long> g_matrix(kN* kN, 0);

void touch_window(std::size_t row0, std::size_t col0, std::size_t len) {
  for (std::size_t r = row0; r < row0 + len; ++r) {
    for (std::size_t c = col0; c < col0 + len; ++c) {
      g_matrix[r * kN + c] += 1;
    }
  }
  std::this_thread::sleep_for(kWork);
}

double run_single_semaphore(std::size_t workers) {
  std::mutex big_lock;  // "one semaphore for the large structure"
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (int s = 0; s < kSweeps; ++s) {
        const std::size_t row = (w * 16 + s) % (kN - 8);
        std::lock_guard<std::mutex> lock(big_lock);
        touch_window(row, (s * 8) % (kN - 8), 8);
      }
    });
  }
  for (auto& t : threads) t.join();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double run_data_binding(std::size_t workers) {
  BindingRuntime rt(workers);
  const auto start = std::chrono::steady_clock::now();
  rt.bfork([&](Ctx& ctx) {
    const auto w = ctx.pid();
    for (int s = 0; s < kSweeps; ++s) {
      const std::size_t row = (w * 16 + s) % (kN - 8);
      const std::size_t col = (s * 8) % (kN - 8);
      // Bind exactly the 8x8 window being updated.
      auto b = ctx.bind(Region(1)
                            .dim(static_cast<std::int64_t>(row),
                                 static_cast<std::int64_t>(row + 7))
                            .dim(static_cast<std::int64_t>(col),
                                 static_cast<std::int64_t>(col + 7)),
                        Access::ReadWrite);
      touch_window(row, col, 8);
    }
  });
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  constexpr std::size_t kWorkers = 8;
  std::printf("Shared %zux%zu matrix, %zu workers, %d overlapping 8x8 window "
              "sweeps each.\n\n",
              kN, kN, kWorkers, kSweeps);

  g_matrix.assign(kN * kN, 0);
  const double coarse = run_single_semaphore(kWorkers);
  const long total_after_coarse =
      std::accumulate(g_matrix.begin(), g_matrix.end(), 0L);

  g_matrix.assign(kN * kN, 0);
  const double fine = run_data_binding(kWorkers);
  const long total_after_fine =
      std::accumulate(g_matrix.begin(), g_matrix.end(), 0L);

  std::printf("one semaphore for the whole matrix: %8.1f ms  (updates: %ld)\n",
              coarse, total_after_coarse);
  std::printf("data binding, per-window regions:   %8.1f ms  (updates: %ld)\n",
              fine, total_after_fine);
  if (total_after_coarse != total_after_fine) {
    std::printf("MISMATCH: binding lost updates!\n");
    return 1;
  }
  std::printf("\nSame work, same result — but data binding serializes only\n"
              "windows that truly overlap (%0.1fx speedup here), exactly the\n"
              "flexibility argument of §6.3.\n",
              coarse / fine);
  return 0;
}
