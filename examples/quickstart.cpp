// Quickstart: build a conflict-free memory, issue concurrent block
// accesses, and watch the AT-space schedule keep every processor's access
// at exactly beta cycles — the paper's headline property in ~60 lines.
// Finishes by running the same memory on the tick engine with the
// wall-clock profiler on and printing a structured experiment report.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>
#include <iostream>
#include <vector>

#include "cfm/at_space.hpp"
#include "cfm/cfm_memory.hpp"
#include "sim/engine.hpp"
#include "sim/report.hpp"

using namespace cfm;

int main() {
  // A CFM with 4 processors, bank cycle c = 2 -> 8 banks, beta = 9.
  const auto cfg = core::CfmConfig::make(/*processors=*/4, /*bank_cycle=*/2,
                                         /*word_bits=*/16);
  std::printf("CFM config: n=%u processors, b=%u banks, c=%u, block=%u bytes, "
              "beta=%u cycles\n",
              cfg.processors, cfg.banks, cfg.bank_cycle, cfg.block_bytes(),
              cfg.block_access_time());

  // The Table 3.1 address-path schedule: which processor talks to which
  // bank at each slot of one period.
  core::AtSpace at(cfg);
  std::printf("\nAddress-path connections (Table 3.1 — rows are slots):\n");
  const auto table = at.connection_table();
  std::printf("      ");
  for (std::uint32_t b = 0; b < cfg.banks; ++b) std::printf("  B%u", b);
  std::printf("\n");
  for (std::uint32_t t = 0; t < cfg.banks; ++t) {
    std::printf("slot %u:", t);
    for (std::uint32_t b = 0; b < cfg.banks; ++b) {
      if (table[t][b].has_value()) {
        std::printf("  P%u", *table[t][b]);
      } else {
        std::printf("   .");
      }
    }
    std::printf("\n");
  }

  // All four processors issue block operations at the same instant —
  // to the same module — and each completes in exactly beta cycles.
  core::CfmMemory mem(cfg);
  std::vector<core::CfmMemory::OpToken> ops;
  std::vector<sim::Word> data(cfg.banks);
  for (std::uint32_t w = 0; w < cfg.banks; ++w) data[w] = 100 + w;

  sim::Cycle t = 0;
  ops.push_back(mem.issue(t, 0, core::BlockOpKind::Write, /*offset=*/5, data));
  ops.push_back(mem.issue(t, 1, core::BlockOpKind::Read, /*offset=*/6));
  ops.push_back(mem.issue(t, 2, core::BlockOpKind::Read, /*offset=*/7));
  ops.push_back(mem.issue(t, 3, core::BlockOpKind::Read, /*offset=*/8));

  bool done = false;
  while (!done) {
    mem.tick(t++);
    done = true;
    for (const auto op : ops) {
      if (mem.result(op) == nullptr) done = false;
    }
  }

  std::printf("\nConcurrent block accesses (issued together at slot 0):\n");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto r = mem.take_result(ops[i]);
    std::printf("  processor %zu: %s, %llu cycles, %u restarts\n", i,
                r->status == core::OpStatus::Completed ? "completed" : "?!",
                static_cast<unsigned long long>(r->completed - r->issued),
                r->restarts);
  }
  std::printf("\nNo conflicts, no retries, no arbitration — every access "
              "took exactly beta = %u cycles.\n",
              cfg.block_access_time());

  // Read back what processor 0 wrote.
  const auto block = mem.peek_block(5);
  std::printf("block 5 contents:");
  for (const auto w : block) {
    std::printf(" %llu", static_cast<unsigned long long>(w));
  }
  std::printf("\n");

  // ---- structured reports & the engine profiler ---------------------
  //
  // Every bench in bench/ emits one of these via --json-out; here we
  // build a small one by hand: run the memory on the tick engine with
  // wall-clock profiling enabled and capture the result.
  auto engine = sim::Engine::make(sim::EngineConfig{1});
  core::CfmMemory timed(cfg);
  timed.attach(*engine, engine->allocate_domain());
  engine->enable_profiling();

  const auto op = timed.issue(engine->now(), 0, core::BlockOpKind::Read, 5);
  while (timed.result(op) == nullptr) engine->step();
  (void)timed.take_result(op);

  sim::Report report("quickstart");
  report.set_param("processors", cfg.processors);
  report.set_param("beta", cfg.block_access_time());
  report.add_scalar("cycles_run", engine->now());
  report.add_counters("memory", timed.counters());
  report.add_section("engine_profile", engine->profile().to_json());

  std::printf("\nStructured report (the cfm-bench-report/v1 schema every "
              "bench emits with --json-out):\n");
  report.write(std::cout);
  return 0;
}
