// Hot-spot spin-lock shoot-out (§2.1, §4.2.2, §5.3.2).
//
// N processors hammer one lock.  Three machines:
//   1. a buffered multistage network fed the same traffic (the
//      Ultracomputer/RP3 situation): tree saturation punishes *bystander*
//      traffic as the hot fraction grows (Fig 2.1);
//   2. a snoopy bus: every contender's retry is a bus transaction — the
//      bus queue is the hot spot;
//   3. the CFM: waiters spin in their own AT-space slots (swap-based) or
//      in their local caches (protocol-based); no hot spot can exist.
#include <cstdio>

#include "workload/lock_workload.hpp"

using namespace cfm::workload;

int main() {
  std::printf("=== Tree saturation on a buffered omega (Fig 2.1) ===\n");
  std::printf("%-14s %-18s %-16s %-14s\n", "hot fraction", "background lat",
              "saturated queues", "reject rate");
  for (const double hot : {0.0, 0.1, 0.2, 0.4, 0.6}) {
    const auto r = run_hotspot_buffered(16, 0.35, hot, 2, 20000, 7);
    std::printf("%-14.2f %-18.2f %-16.3f %-14.3f\n", hot,
                r.background_latency, r.saturated_queues, r.reject_rate);
  }

  std::printf("\n=== Lock contention: throughput under N contenders ===\n");
  std::printf("(hold = 20 cycles per critical section, 40k-cycle runs)\n");
  std::printf("%-12s %-22s %-22s %-22s\n", "contenders", "CFM swap (acq/kcyc)",
              "CFM cached (acq/kcyc)", "snoopy bus (acq/kcyc)");
  for (const std::uint32_t n : {2u, 4u, 8u, 16u}) {
    const auto cfm = run_lock_farm_cfm(n, 20, 40000, 1);
    const auto cached = run_lock_farm_cached(n, 20, 40000, 1);
    const auto bus = run_lock_farm_snoopy(n, 20, 40000, 1);
    std::printf("%-12u %-22.2f %-22.2f %-22.2f\n", n, cfm.throughput,
                cached.throughput, bus.throughput);
  }

  std::printf("\n=== Where the contention lives ===\n");
  const auto bus = run_lock_farm_snoopy(16, 20, 40000, 1);
  const auto cached = run_lock_farm_cached(16, 20, 40000, 1);
  std::printf("snoopy bus utilization at 16 contenders: %.0f%%\n",
              100.0 * bus.aux_pressure);
  std::printf("CFM invalidations per lock hand-off:     %.1f\n",
              cached.aux_pressure);
  std::printf("\nThe CFM numbers stay flat because read-looping waiters\n"
              "touch only their own AT-space slots / local caches — the\n"
              "hot-spot problem \"can never occur\" (§4.2.2).\n");
  return 0;
}
