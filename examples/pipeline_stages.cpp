// Pipelining with process binding (§6.4.3, Fig 6.10) — the paper's
// 32-stage pipeline over a 1000-element array, line for line:
//
//   stage(PROC *pp) {
//     for (i = 0; i < 1000; i++) {
//       if (pid != 0) bind(p[pid-1], ex, blocking, i);
//       compute(a[i]);
//       bind(*pp, ex, , 0:i);
//     }
//   }
#include <cstdio>
#include <numeric>
#include <vector>

#include "binding/patterns.hpp"
#include "binding/runtime.hpp"

using namespace cfm::bind;

int main() {
  constexpr std::size_t kStages = 32;
  constexpr std::int64_t kItems = 1000;

  std::printf("Pipelining %lld items through %zu stages "
              "(each stage adds its pid+1)...\n",
              static_cast<long long>(kItems), kStages);

  std::vector<long> a(kItems, 0);
  BindingRuntime rt(kStages);
  rt.bfork([&](Ctx& ctx) {
    pipeline(ctx, kItems, [&](std::size_t stage, std::int64_t item) {
      // compute(a[i]): stage s contributes s+1.
      a[item] += static_cast<long>(stage) + 1;
    });
  });

  // Every element must have passed through all 32 stages exactly once:
  // sum of 1..32 = 528.
  const long expected = kStages * (kStages + 1) / 2;
  std::size_t correct = 0;
  for (const long v : a) {
    if (v == expected) ++correct;
  }
  std::printf("elements fully processed: %zu / %lld (expected value %ld)\n",
              correct, static_cast<long long>(kItems), expected);

  // And a barrier example (Fig 6.9): phase counters that must agree.
  std::printf("\nBarrier (Fig 6.9): 8 workers, 100 synchronized rounds... ");
  BindingRuntime rt2(8);
  std::vector<std::atomic<int>> round_counts(100);
  std::atomic<bool> torn{false};
  rt2.bfork([&](Ctx& ctx) {
    ProcBarrier barrier;
    for (int r = 0; r < 100; ++r) {
      ++round_counts[r];
      barrier.arrive_and_wait(ctx);
      if (round_counts[r] != 8) torn = true;
    }
  });
  std::printf("%s\n", torn ? "FAILED" : "all rounds complete and aligned");
  return torn ? 1 : 0;
}
