// The dining philosophers with resource binding (§6.3.1, Fig 6.5).
//
// Each philosopher binds BOTH chopsticks with a single atomic bind —
// there is no partial acquisition, hence no deadlock and no "room ticket"
// trick (the Linda workaround the paper contrasts, Fig 6.4).  Runs twice:
//   1. on the threaded shared-memory binding runtime (real std::threads);
//   2. on the cycle-level CFM machine via atomic multiple lock (§6.5.1).
#include <algorithm>
#include <atomic>
#include <thread>
#include <cstdio>
#include <vector>

#include "binding/cfm_binding.hpp"
#include "binding/runtime.hpp"

using namespace cfm::bind;

int main() {
  constexpr std::size_t kPhilosophers = 5;
  constexpr int kMeals = 40;

  std::printf("=== Threaded binding runtime: %zu philosophers, %d meals each ===\n",
              kPhilosophers, kMeals);
  BindingRuntime rt(kPhilosophers);
  std::vector<std::atomic<int>> meals(kPhilosophers);
  const std::uint64_t kChopsticks = 1;  // shared object id

  rt.bfork([&](Ctx& ctx) {
    const auto i = static_cast<std::int64_t>(ctx.pid());
    const auto right = static_cast<std::int64_t>((ctx.pid() + 1) % kPhilosophers);
    for (int m = 0; m < kMeals; ++m) {
      // think();
      // Bind both chopsticks atomically: chopstick[i] and chopstick[i+1].
      // A single strided region cannot express {i, (i+1) mod n}, so bind
      // the pair as two single-element dims via two bind calls would
      // deadlock — instead grab the wrap-around pair in ascending order
      // inside ONE region when contiguous, or use the non-blocking probe
      // + retry loop, which the manager makes deadlock-free to write:
      while (true) {
        auto lo = std::min(i, right);
        auto hi = std::max(i, right);
        if (hi - lo == 1) {
          // Adjacent: one contiguous region covers both chopsticks.
          auto b = ctx.bind(Region(kChopsticks).dim(lo, hi), Access::ReadWrite);
          ++meals[ctx.pid()];
          break;
        }
        // Wrap-around pair {0, n-1}: probe both ends without holding one
        // while waiting for the other (no partial acquisition).
        auto first = ctx.try_bind(Region(kChopsticks).dim(lo, lo),
                                  Access::ReadWrite);
        if (!first.has_value()) {
          std::this_thread::yield();
          continue;
        }
        auto second = ctx.try_bind(Region(kChopsticks).dim(hi, hi),
                                   Access::ReadWrite);
        if (!second.has_value()) {
          first->reset();  // no partial acquisition: drop and retry
          std::this_thread::yield();
          continue;
        }
        ++meals[ctx.pid()];
        break;
      }
      // eat(); both chopsticks release when the binds leave scope.
    }
  });
  for (std::size_t i = 0; i < kPhilosophers; ++i) {
    std::printf("  philosopher %zu ate %d times\n", i, meals[i].load());
  }

  std::printf("\n=== CFM machine: atomic multiple lock (Fig 5.5 support) ===\n");
  // On the CFM the wrap-around pair is no problem at all: both chopstick
  // bits are acquired by ONE multiple-test-and-set — all or nothing.
  const auto result = run_cfm_binding_farm(
      /*processors=*/8, dining_philosopher_regions(8),
      /*hold_cycles=*/12, /*cycles=*/60000);
  std::printf("  8 philosophers, 60k cycles: %llu meals total "
              "(min %.0f per philosopher), mean bind latency %.1f cycles\n",
              static_cast<unsigned long long>(result.binds),
              result.min_per_proc, result.mean_bind_latency);
  std::printf("  No deadlock, no starvation, no global room ticket —\n"
              "  the multiple lock acquires both chopsticks or neither.\n");
  return 0;
}
