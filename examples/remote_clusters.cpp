// Multi-cluster CFM with free-slot remote access (Fig 3.12) — two
// conflict-free clusters of three processors each donate their fourth
// AT-space slot to remote service.  Remote requests are "just slower
// regular memory accesses" and local traffic never notices them.
#include <cstdio>

#include "cfm/cluster.hpp"

using namespace cfm::core;
using cfm::sim::Cycle;
using cfm::sim::Word;

int main() {
  ClusterConfig cfg;
  cfg.local_processors = 3;
  cfg.total_slots = 4;
  cfg.link_latency = 4;
  ClusterSystem sys(2, cfg);

  std::printf("Fig 3.12 — two conflict-free clusters, 3 CPUs + 1 free slot "
              "each, 4-cycle link\n\n");

  // Cluster B holds a block; cluster A's processor 0 fetches it remotely
  // while ALL of cluster B's processors hammer their own memory.
  sys.memory(1).poke_block(9, std::vector<Word>{5, 6, 7, 8});

  Cycle t = 0;
  const auto remote = sys.remote_request(t, 0, 1, BlockOpKind::Read, 9);
  std::vector<CfmMemory::OpToken> local_ops;
  for (std::uint32_t p = 0; p < 3; ++p) {
    local_ops.push_back(sys.memory(1).issue(t, p, BlockOpKind::Read, 100 + p));
  }

  while (sys.result(remote) == nullptr) {
    sys.tick(t);
    sys.memory(0).tick(t);
    sys.memory(1).tick(t);
    ++t;
  }
  const auto* r = sys.result(remote);
  std::printf("remote read of cluster B's block 9 from cluster A:\n");
  std::printf("  data:");
  for (const auto w : r->data) {
    std::printf(" %llu", static_cast<unsigned long long>(w));
  }
  std::printf("\n  latency: %llu cycles (link %u + block %u + link %u)\n",
              static_cast<unsigned long long>(r->completed - r->issued),
              cfg.link_latency,
              sys.memory(1).config().block_access_time(), cfg.link_latency);

  std::printf("\ncluster B's local accesses during the remote service:\n");
  for (std::size_t p = 0; p < local_ops.size(); ++p) {
    const auto lr = sys.memory(1).take_result(local_ops[p]);
    std::printf("  processor %zu: %llu cycles (beta = %u, undisturbed)\n", p,
                static_cast<unsigned long long>(lr->completed - lr->issued),
                sys.memory(1).config().block_access_time());
  }

  std::printf("\nremote write from A, then read-back at B:\n");
  const std::vector<Word> payload{40, 41, 42, 43};
  const auto wreq = sys.remote_request(t, 0, 1, BlockOpKind::Write, 20, payload);
  while (sys.result(wreq) == nullptr) {
    sys.tick(t);
    sys.memory(0).tick(t);
    sys.memory(1).tick(t);
    ++t;
  }
  const auto check = sys.memory(1).peek_block(20);
  std::printf("  cluster B now sees block 20 =");
  for (const auto w : check) {
    std::printf(" %llu", static_cast<unsigned long long>(w));
  }
  std::printf("\n\nThe free slot makes remote service contention-free for "
              "the host cluster (§3.3).\n");
  return 0;
}
