// Tests for process binding (§6.4): PROC levels and ex-binding waits.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "binding/process.hpp"

namespace {

using namespace cfm::bind;

TEST(Proc, LevelStartsUnset) {
  Proc p;
  EXPECT_EQ(p.level(), -1);
  EXPECT_FALSE(p.allows(0));
}

TEST(Proc, SetLevelIsMonotone) {
  Proc p;
  p.set_level(5);
  EXPECT_EQ(p.level(), 5);
  p.set_level(3);  // lower: ignored (0:i range semantics)
  EXPECT_EQ(p.level(), 5);
  p.set_level(9);
  EXPECT_EQ(p.level(), 9);
  EXPECT_TRUE(p.allows(0));
  EXPECT_TRUE(p.allows(9));
  EXPECT_FALSE(p.allows(10));
}

TEST(Proc, AwaitReturnsImmediatelyWhenCovered) {
  Proc p;
  p.set_level(4);
  p.await_level(2);  // must not block
  SUCCEED();
}

TEST(Proc, AwaitBlocksUntilLevelReached) {
  Proc p;
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    p.await_level(3);
    released = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(released);
  p.set_level(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(released);  // 2 < 3: still waiting
  p.set_level(3);
  waiter.join();
  EXPECT_TRUE(released);
}

TEST(Proc, ManyWaitersAllReleased) {
  Proc p;
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 8; ++i) {
    waiters.emplace_back([&p, &released, i] {
      p.await_level(i);
      ++released;
    });
  }
  p.set_level(7);
  for (auto& t : waiters) t.join();
  EXPECT_EQ(released, 8);
}

TEST(ProcGroup, AssignsPids) {
  ProcGroup g(4);
  EXPECT_EQ(g.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(g[i].pid, static_cast<std::int64_t>(i));
    EXPECT_EQ(g[i].level(), -1);
  }
}

}  // namespace
