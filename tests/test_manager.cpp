// Tests for the BindingManager (§6.2.2): multiple-read/single-write,
// blocking hand-off, non-blocking failure, and deadlock detection.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "binding/manager.hpp"

namespace {

using namespace cfm::bind;

Region row(std::int64_t i) { return Region(1).dim(i, i); }

TEST(Manager, GrantsNonConflicting) {
  BindingManager mgr;
  const auto a = mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 1);
  const auto b = mgr.bind(row(1), Access::ReadWrite, Sync::NonBlocking, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(mgr.active_count(), 2u);
}

TEST(Manager, MultipleReadersShareARegion) {
  BindingManager mgr;
  const auto a = mgr.bind(row(0), Access::ReadOnly, Sync::NonBlocking, 1);
  const auto b = mgr.bind(row(0), Access::ReadOnly, Sync::NonBlocking, 2);
  EXPECT_TRUE(a.has_value());
  EXPECT_TRUE(b.has_value());
}

TEST(Manager, WriterExcludesReaderAndWriter) {
  BindingManager mgr;
  const auto w = mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 1);
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(
      mgr.bind(row(0), Access::ReadOnly, Sync::NonBlocking, 2).has_value());
  EXPECT_FALSE(
      mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 2).has_value());
  EXPECT_EQ(mgr.total_conflicts(), 2u);
}

TEST(Manager, ReaderExcludesWriterButNotReader) {
  BindingManager mgr;
  const auto r = mgr.bind(row(0), Access::ReadOnly, Sync::NonBlocking, 1);
  ASSERT_TRUE(r.has_value());
  EXPECT_FALSE(
      mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 2).has_value());
  EXPECT_TRUE(
      mgr.bind(row(0), Access::ReadOnly, Sync::NonBlocking, 3).has_value());
}

TEST(Manager, SameOwnerOverlapsFreely) {
  BindingManager mgr;
  const auto a = mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 1);
  const auto b = mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 1);
  EXPECT_TRUE(a.has_value());
  EXPECT_TRUE(b.has_value());
}

TEST(Manager, UnbindWakesBlockedRequest) {
  BindingManager mgr;
  const auto held = mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 1);
  ASSERT_TRUE(held.has_value());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    const auto id = mgr.bind(row(0), Access::ReadWrite, Sync::Blocking, 2);
    granted = id.has_value();
    mgr.unbind(*id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted);
  mgr.unbind(*held);
  waiter.join();
  EXPECT_TRUE(granted);
  EXPECT_EQ(mgr.active_count(), 0u);
}

TEST(Manager, StridedRegionsDoNotFalselyConflict) {
  BindingManager mgr;
  const auto evens = Region(1).dim(0, 99, 2);
  const auto odds = Region(1).dim(1, 99, 2);
  const auto a = mgr.bind(evens, Access::ReadWrite, Sync::NonBlocking, 1);
  const auto b = mgr.bind(odds, Access::ReadWrite, Sync::NonBlocking, 2);
  EXPECT_TRUE(a.has_value());
  EXPECT_TRUE(b.has_value());
}

TEST(Manager, DeadlockDetected) {
  // Owner 1 holds A and blocks on B; owner 2 holds B and blocks on A:
  // one of them must get DeadlockError instead of hanging forever.
  BindingManager mgr;
  const auto a = mgr.bind(row(0), Access::ReadWrite, Sync::NonBlocking, 1);
  const auto b = mgr.bind(row(1), Access::ReadWrite, Sync::NonBlocking, 2);
  ASSERT_TRUE(a.has_value() && b.has_value());
  std::atomic<int> deadlocks{0};
  std::atomic<int> grants{0};
  auto worker = [&](OwnerId owner, const Region& want, BindingId held) {
    try {
      const auto id = mgr.bind(want, Access::ReadWrite, Sync::Blocking, owner);
      ++grants;
      mgr.unbind(*id);
    } catch (const DeadlockError&) {
      ++deadlocks;
      mgr.unbind(held);  // back off: release what we hold
    }
  };
  std::thread t1(worker, 1, row(1), *a);
  std::thread t2(worker, 2, row(0), *b);
  t1.join();
  t2.join();
  EXPECT_GE(deadlocks.load(), 1);
  EXPECT_GE(grants.load(), 1) << "victim's back-off should unblock the other";
}

TEST(Manager, UnknownUnbindThrows) {
  BindingManager mgr;
  EXPECT_THROW(mgr.unbind(42), std::invalid_argument);
}

TEST(Manager, ManyThreadsCounterStressIsExclusive) {
  // N threads increment a plain int under rw binds of the same region;
  // exclusivity means no lost updates.
  BindingManager mgr;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < kIters; ++k) {
        const auto id =
            mgr.bind(row(0), Access::ReadWrite, Sync::Blocking, 100 + i);
        ++counter;
        mgr.unbind(*id);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
  EXPECT_EQ(mgr.total_grants(), static_cast<std::uint64_t>(kThreads * kIters) + 0u);
}

}  // namespace
