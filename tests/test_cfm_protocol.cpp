// Tests for the CFM cache coherence protocol (§5.2): every Table 5.1 row,
// broadcast-free invalidation, remote write-back triggering, Table 5.2
// races, and randomized coherence properties.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cache/cfm_protocol.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;
using cfm::sim::Word;

CfmCacheSystem::Params params_for(std::uint32_t n, std::uint32_t c = 1) {
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(n, c);
  return p;
}

CfmCacheSystem::Outcome run_one(CfmCacheSystem& sys, Cycle& t,
                                CfmCacheSystem::ReqId id, Cycle limit = 5000) {
  const Cycle deadline = t + limit;
  while (t < deadline) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(id)) return *r;
  }
  ADD_FAILURE() << "request timed out";
  return {};
}

void settle(CfmCacheSystem& sys, Cycle& t, Cycle cycles = 50) {
  for (Cycle i = 0; i < cycles; ++i) sys.tick(t++);
}

TEST(CfmProtocol, ReadMissFillsValid) {
  CfmCacheSystem sys(params_for(4));
  sys.poke_memory(10, {1, 2, 3, 4});
  Cycle t = 0;
  const auto r = run_one(sys, t, sys.load(t, 0, 10));
  EXPECT_FALSE(r.local_hit);
  EXPECT_EQ(r.data, (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_EQ(sys.line_state(0, 10), LineState::Valid);
  // Latency == beta (+1 resolution cycle).
  EXPECT_LE(r.completed - r.issued, sys.config().block_access_time() + 1);
}

TEST(CfmProtocol, ReadHitNoMemoryAccess) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 0, 10));
  const auto before = sys.counters().get("proto_reads");
  const auto r = run_one(sys, t, sys.load(t, 0, 10));
  EXPECT_TRUE(r.local_hit);
  EXPECT_EQ(r.completed - r.issued, 1u);
  EXPECT_EQ(sys.counters().get("proto_reads"), before);  // Table 5.1 row 1
}

TEST(CfmProtocol, SharedCopiesCoexist) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 0, 10));
  (void)run_one(sys, t, sys.load(t, 1, 10));
  (void)run_one(sys, t, sys.load(t, 2, 10));
  EXPECT_EQ(sys.line_state(0, 10), LineState::Valid);
  EXPECT_EQ(sys.line_state(1, 10), LineState::Valid);
  EXPECT_EQ(sys.line_state(2, 10), LineState::Valid);
}

TEST(CfmProtocol, StoreInvalidatesRemoteCopiesWithoutAck) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 0, 10));
  (void)run_one(sys, t, sys.load(t, 2, 10));
  const auto r = run_one(sys, t, sys.store(t, 1, 10, 0, 77));
  EXPECT_FALSE(r.local_hit);
  EXPECT_EQ(sys.line_state(0, 10), LineState::Invalid);
  EXPECT_EQ(sys.line_state(2, 10), LineState::Invalid);
  EXPECT_EQ(sys.line_state(1, 10), LineState::Dirty);
  EXPECT_EQ(sys.counters().get("invalidations"), 2u);
}

TEST(CfmProtocol, WriteHitDirtyIsLocal) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.store(t, 1, 10, 0, 77));
  const auto before = sys.counters().get("proto_read_invs");
  const auto r = run_one(sys, t, sys.store(t, 1, 10, 1, 88));
  EXPECT_TRUE(r.local_hit);  // Table 5.1: write hit on dirty, no access
  EXPECT_EQ(sys.counters().get("proto_read_invs"), before);
}

TEST(CfmProtocol, WriteHitValidUpgradesViaReadInvalidate) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 1, 10));
  const auto before = sys.counters().get("proto_read_invs");
  (void)run_one(sys, t, sys.store(t, 1, 10, 0, 5));
  EXPECT_EQ(sys.counters().get("proto_read_invs"), before + 1);
  EXPECT_EQ(sys.line_state(1, 10), LineState::Dirty);
}

TEST(CfmProtocol, ReadMissOnRemoteDirtyTriggersWriteBack) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.store(t, 1, 10, 0, 77));
  ASSERT_EQ(sys.line_state(1, 10), LineState::Dirty);
  const auto r = run_one(sys, t, sys.load(t, 3, 10));
  EXPECT_TRUE(r.remote_dirty);
  EXPECT_GE(r.proto_retries, 1u);
  EXPECT_EQ(r.data.at(0), 77u);  // got the updated data
  EXPECT_EQ(sys.line_state(1, 10), LineState::Valid);  // owner downgraded
  EXPECT_EQ(sys.memory_block(10).at(0), 77u);          // memory updated
  EXPECT_GE(sys.counters().get("remote_wbs_served"), 1u);
}

TEST(CfmProtocol, WriteMissOnRemoteDirtyStealsOwnership) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  (void)run_one(sys, t, sys.store(t, 1, 10, 0, 77));
  const auto r = run_one(sys, t, sys.store(t, 2, 10, 1, 88));
  EXPECT_TRUE(r.remote_dirty);
  settle(sys, t);
  EXPECT_EQ(sys.line_state(2, 10), LineState::Dirty);
  EXPECT_NE(sys.line_state(1, 10), LineState::Dirty);
  EXPECT_TRUE(sys.check_single_dirty_owner());
}

TEST(CfmProtocol, DirtyVictimWrittenBackBeforeFill) {
  CfmCacheSystem::Params p = params_for(4);
  p.cache_lines = 2;  // tiny cache to force conflicts
  CfmCacheSystem sys(p);
  Cycle t = 0;
  (void)run_one(sys, t, sys.store(t, 0, 2, 0, 55));   // slot 0, dirty
  (void)run_one(sys, t, sys.load(t, 0, 4));           // 4 mod 2 == 0: evict
  EXPECT_EQ(sys.counters().get("evict_wbs"), 1u);
  EXPECT_EQ(sys.memory_block(2).at(0), 55u);  // flushed before replacement
  EXPECT_EQ(sys.line_state(0, 4), LineState::Valid);
}

TEST(CfmProtocol, RmwIsAtomicAgainstConcurrentRmw) {
  CfmCacheSystem sys(params_for(8));
  Cycle t = 0;
  const auto inc = [](const std::vector<Word>& in) {
    auto out = in;
    out[0] += 1;
    return out;
  };
  std::vector<CfmCacheSystem::ReqId> live(8, 0);
  std::uint64_t done = 0;
  for (; t < 4000; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      if (live[p] != 0) {
        if (sys.take_result(live[p])) {
          live[p] = 0;
          ++done;
        }
      }
      if (live[p] == 0 && done + 8 < 200 && sys.processor_idle(p)) {
        live[p] = sys.rmw(t, p, 20, inc);
      }
    }
    sys.tick(t);
  }
  // Drain stragglers.
  for (Cycle extra = 0; extra < 500; ++extra) sys.tick(t++);
  for (auto& id : live) {
    if (id != 0 && sys.take_result(id)) ++done;
  }
  EXPECT_EQ(sys.memory_block(20).at(0), done) << "lost increments";
  EXPECT_TRUE(sys.check_single_dirty_owner());
}

TEST(CfmProtocol, CompetingReadInvalidatesExactlyOneWinsEachRound) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  const auto a = sys.store(t, 0, 9, 0, 1);
  const auto b = sys.store(t, 1, 9, 0, 2);
  const auto c = sys.store(t, 2, 9, 0, 3);
  Cycle limit = 3000;
  std::map<CfmCacheSystem::ReqId, bool> got{{a, false}, {b, false}, {c, false}};
  while (t < limit) {
    sys.tick(t);
    ++t;
    for (auto& [id, done] : got) {
      if (!done && sys.take_result(id)) {
        done = true;
      }
    }
    EXPECT_TRUE(sys.check_single_dirty_owner());
    if (got[a] && got[b] && got[c]) break;
  }
  EXPECT_TRUE(got[a] && got[b] && got[c]);
  // The last writer's value is in some cache/memory; all serialized.
  settle(sys, t);
  EXPECT_TRUE(sys.check_single_dirty_owner());
}

TEST(CfmProtocol, QuiescenceForWeakConsistency) {
  CfmCacheSystem sys(params_for(4));
  Cycle t = 0;
  EXPECT_TRUE(sys.quiescent(0));
  const auto id = sys.load(t, 0, 10);
  EXPECT_FALSE(sys.quiescent(0));
  (void)run_one(sys, t, id);
  EXPECT_TRUE(sys.quiescent(0));
}

TEST(CfmProtocol, RandomizedCoherence) {
  // Random loads/stores/rmws across processors and a small block set:
  //  * at most one dirty owner per block at all times,
  //  * every load returns the most recent completed store's value for
  //    single-writer blocks (checked on block 0 with writer 0 only).
  CfmCacheSystem sys(params_for(8));
  cfm::sim::Rng rng(2024);
  Cycle t = 0;
  std::vector<CfmCacheSystem::ReqId> live(8, 0);
  std::vector<std::uint8_t> kind(8, 0);
  std::vector<std::uint64_t> target(8, 0);
  Word last_written_block0 = 0;
  std::map<CfmCacheSystem::ReqId, Word> store_vals;

  for (; t < 6000; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      if (live[p] != 0) {
        if (auto r = sys.take_result(live[p])) {
          if (kind[p] == 0 && p != 0 && target[p] == 0) {
            // Loads of block 0 by non-writers: value must be one of the
            // values ever written (monotone counter: <= last written).
            if (!r->data.empty()) {
              EXPECT_LE(r->data[0], last_written_block0);
            }
          }
          if (kind[p] == 1 && store_vals.count(live[p])) {
            last_written_block0 =
                std::max(last_written_block0, store_vals[live[p]]);
          }
          live[p] = 0;
        }
      }
      if (live[p] == 0 && sys.processor_idle(p) && rng.chance(0.3)) {
        const auto block = rng.below(4);
        if (p == 0 && block == 0 && rng.chance(0.5)) {
          const Word v = last_written_block0 + 1;
          live[p] = sys.store(t, p, 0, 0, v);
          store_vals[live[p]] = v;
          kind[p] = 1;
          target[p] = 0;
        } else if (rng.chance(0.7)) {
          live[p] = sys.load(t, p, block);
          kind[p] = 0;
          target[p] = block;
        } else if (block != 0) {
          live[p] = sys.store(t, p, block, 0, t);
          kind[p] = 2;
          target[p] = block;
        } else {
          live[p] = sys.load(t, p, block);
          kind[p] = 0;
          target[p] = block;
        }
      }
    }
    sys.tick(t);
    if (t % 64 == 0) ASSERT_TRUE(sys.check_single_dirty_owner());
  }
}

}  // namespace
