// Tests for the binding runtime: bfork, data binding through Ctx, and the
// barrier/pipeline patterns (Figs 6.9 / 6.10).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "binding/patterns.hpp"
#include "binding/runtime.hpp"

namespace {

using namespace cfm::bind;

TEST(Runtime, BforkRunsEveryWorkerOnce) {
  BindingRuntime rt(6);
  std::vector<std::atomic<int>> hits(6);
  rt.bfork([&](Ctx& ctx) { ++hits[ctx.pid()]; });
  for (auto& h : hits) EXPECT_EQ(h, 1);
}

TEST(Runtime, BforkPropagatesWorkerException) {
  BindingRuntime rt(3);
  EXPECT_THROW(rt.bfork([](Ctx& ctx) {
    if (ctx.pid() == 1) throw std::runtime_error("boom");
  }),
               std::runtime_error);
}

TEST(Runtime, SharedCounterViaDataBinding) {
  // The paper's canonical example: sh = sh + 1 under a rw bind.
  BindingRuntime rt(8);
  int sh = 0;
  constexpr int kIters = 100;
  rt.bfork([&](Ctx& ctx) {
    for (int i = 0; i < kIters; ++i) {
      auto b = ctx.bind(Region::whole(1), Access::ReadWrite);
      ++sh;
    }
  });
  EXPECT_EQ(sh, 8 * kIters);
}

TEST(Runtime, DisjointStridedRegionsRunInParallel) {
  // Workers write interleaved slices of one array; no conflicts expected,
  // and every element gets exactly its writer's stamp.
  constexpr std::size_t kWorkers = 4;
  constexpr std::size_t kElems = 64;
  BindingRuntime rt(kWorkers);
  std::vector<int> data(kElems, -1);
  rt.bfork([&](Ctx& ctx) {
    const auto pid = static_cast<std::int64_t>(ctx.pid());
    auto b = ctx.bind(Region(1).dim(pid, kElems - 1, kWorkers),
                      Access::ReadWrite);
    for (std::size_t i = ctx.pid(); i < kElems; i += kWorkers) {
      data[i] = static_cast<int>(ctx.pid());
    }
  });
  EXPECT_EQ(rt.manager().total_conflicts(), 0u)
      << "strided regions must not conflict";
  for (std::size_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(data[i], static_cast<int>(i % kWorkers));
  }
}

TEST(Runtime, TryBindReportsConflict) {
  BindingRuntime rt(2);
  std::atomic<int> failures{0};
  std::atomic<int> successes{0};
  rt.bfork([&](Ctx& ctx) {
    if (ctx.pid() == 0) {
      auto b = ctx.bind(Region::whole(9), Access::ReadWrite);
      ctx.set_level(0);           // signal: I hold it
      ctx.await_level(1, 0);      // wait for the probe
    } else {
      ctx.await_level(0, 0);
      if (ctx.try_bind(Region::whole(9), Access::ReadWrite).has_value()) {
        ++successes;
      } else {
        ++failures;
      }
      ctx.set_level(0);
    }
  });
  EXPECT_EQ(failures, 1);
  EXPECT_EQ(successes, 0);
}

TEST(Patterns, BarrierSeparatesPhases) {
  constexpr std::size_t kWorkers = 8;
  BindingRuntime rt(kWorkers);
  std::atomic<int> phase1{0};
  std::atomic<bool> violation{false};
  rt.bfork([&](Ctx& ctx) {
    ProcBarrier barrier;
    ++phase1;
    barrier.arrive_and_wait(ctx);
    // After the barrier, everyone must have finished phase 1.
    if (phase1 != kWorkers) violation = true;
    barrier.arrive_and_wait(ctx);  // reusable
  });
  EXPECT_FALSE(violation);
}

TEST(Patterns, BarrierManyRounds) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kRounds = 20;
  BindingRuntime rt(kWorkers);
  std::vector<std::atomic<int>> counters(kRounds);
  std::atomic<bool> violation{false};
  rt.bfork([&](Ctx& ctx) {
    ProcBarrier barrier;
    for (int r = 0; r < kRounds; ++r) {
      ++counters[r];
      barrier.arrive_and_wait(ctx);
      if (counters[r] != kWorkers) violation = true;
    }
  });
  EXPECT_FALSE(violation);
}

TEST(Patterns, PipelineProcessesItemsInStageOrder) {
  // Fig 6.10: each array element must be processed by every stage in
  // sequence; stage s may touch item i only after stage s-1 did.
  constexpr std::size_t kStages = 4;
  constexpr std::int64_t kItems = 50;
  BindingRuntime rt(kStages);
  std::vector<std::atomic<int>> progress(kItems);  // highest stage done + 1
  std::atomic<bool> violation{false};
  rt.bfork([&](Ctx& ctx) {
    pipeline(ctx, kItems, [&](std::size_t stage, std::int64_t item) {
      const int expected = static_cast<int>(stage);
      if (progress[item] != expected) violation = true;
      progress[item] = expected + 1;
    });
  });
  EXPECT_FALSE(violation) << "a stage ran out of order";
  for (std::int64_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(progress[i], static_cast<int>(kStages));
  }
}

TEST(Patterns, PipelineComputesRunningTransform) {
  // Functional check: stage s adds 10^s to each element.
  constexpr std::size_t kStages = 3;
  constexpr std::int64_t kItems = 30;
  BindingRuntime rt(kStages);
  std::vector<long> data(kItems, 0);
  rt.bfork([&](Ctx& ctx) {
    pipeline(ctx, kItems, [&](std::size_t stage, std::int64_t item) {
      long add = 1;
      for (std::size_t s = 0; s < stage; ++s) add *= 10;
      data[item] += add;
    });
  });
  for (const long v : data) EXPECT_EQ(v, 111);
}

}  // namespace
