// Scenario tests for CfmMemory, mirroring the paper's Chapter 4 figures:
// same-address write races (Figs 4.1, 4.3, 4.4), read restarts (Fig 4.5),
// and swap interactions (Fig 4.6), plus exact block-access timing.
#include <gtest/gtest.h>

#include <vector>

#include "cfm/cfm_memory.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::BlockAddr;
using cfm::sim::Cycle;
using cfm::sim::Word;

std::vector<Word> block_of(std::uint32_t banks, Word v) {
  return std::vector<Word>(banks, v);
}

/// Ticks until every listed op has a result or `limit` cycles pass.
void run_until_done(CfmMemory& mem, Cycle& t,
                    const std::vector<CfmMemory::OpToken>& ops,
                    Cycle limit = 10000) {
  const Cycle deadline = t + limit;
  while (t < deadline) {
    bool all = true;
    for (const auto op : ops) {
      if (mem.result(op) == nullptr) all = false;
    }
    if (all) return;
    mem.tick(t++);
  }
  FAIL() << "ops did not complete";
}

TEST(CfmMemory, ReadTakesExactlyBeta) {
  for (const std::uint32_t c : {1u, 2u, 4u}) {
    CfmMemory mem(CfmConfig::make(4, c));
    const auto beta = mem.config().block_access_time();
    Cycle t = 0;
    const auto op = mem.issue(0, 1, BlockOpKind::Read, 5);
    run_until_done(mem, t, {op});
    const auto r = mem.take_result(op);
    EXPECT_EQ(r->status, OpStatus::Completed);
    EXPECT_EQ(r->completed - r->issued, beta) << "c=" << c;
  }
}

TEST(CfmMemory, NonStallStartAtAnySlot) {
  // §3.1.1: "a block access can start at any time slot" with the same
  // latency — no phase alignment stalls (unlike Monarch/OMP).
  CfmMemory mem(CfmConfig::make(8, 1));
  const auto beta = mem.config().block_access_time();
  Cycle t = 0;
  for (Cycle start = 0; start < 8; ++start) {
    while (t < start) mem.tick(t++);
    const auto op = mem.issue(start, 0, BlockOpKind::Read, start);
    run_until_done(mem, t, {op});
    const auto r = mem.take_result(op);
    EXPECT_EQ(r->completed - r->issued, beta) << "start slot " << start;
  }
}

TEST(CfmMemory, WriteReadRoundtrip) {
  CfmMemory mem(CfmConfig::make(4, 1));
  Cycle t = 0;
  const std::vector<Word> data{10, 20, 30, 40};
  const auto w = mem.issue(0, 0, BlockOpKind::Write, 9, data);
  run_until_done(mem, t, {w});
  EXPECT_EQ(mem.take_result(w)->status, OpStatus::Completed);
  const auto r = mem.issue(t, 1, BlockOpKind::Read, 9);
  run_until_done(mem, t, {r});
  EXPECT_EQ(mem.take_result(r)->data, data);
}

TEST(CfmMemory, ConcurrentDistinctBlocksAllComplete) {
  // The headline property: four processors, four concurrent block ops,
  // zero conflicts, all complete in exactly beta.
  CfmMemory mem(CfmConfig::make(4, 1));
  const auto beta = mem.config().block_access_time();
  Cycle t = 0;
  std::vector<CfmMemory::OpToken> ops;
  for (std::uint32_t p = 0; p < 4; ++p) {
    ops.push_back(mem.issue(0, p, BlockOpKind::Read, 100 + p));
  }
  run_until_done(mem, t, ops);
  for (const auto op : ops) {
    EXPECT_EQ(mem.take_result(op)->completed, beta);
  }
}

TEST(CfmMemory, Fig41SimultaneousWritesOneWinsCleanly) {
  // Two simultaneous same-address writes: without tracking this corrupts
  // (Fig 4.1); with the ATT exactly one completes and the block holds
  // only its data.
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::LatestWins);
  Cycle t = 0;
  const auto a = mem.issue(0, 0, BlockOpKind::Write, 7, block_of(4, 1));
  const auto b = mem.issue(0, 1, BlockOpKind::Write, 7, block_of(4, 2));
  run_until_done(mem, t, {a, b});
  const auto ra = *mem.take_result(a);
  const auto rb = *mem.take_result(b);
  // Processor 0 touches bank 0 first -> it has priority.
  EXPECT_EQ(ra.status, OpStatus::Completed);
  EXPECT_EQ(rb.status, OpStatus::Aborted);
  EXPECT_EQ(mem.peek_block(7), block_of(4, 1));
}

TEST(CfmMemory, Fig43LaterWriteWinsUnderLatestWins) {
  // Write a (slot 0) vs write b (slot 1): a aborts at b's first bank,
  // b completes and owns the whole block.
  CfmMemory mem(CfmConfig::make(8, 1), ConsistencyPolicy::LatestWins);
  Cycle t = 0;
  const auto a = mem.issue(0, 1, BlockOpKind::Write, 7, block_of(8, 0xA));
  mem.tick(t++);
  const auto b = mem.issue(1, 3, BlockOpKind::Write, 7, block_of(8, 0xB));
  run_until_done(mem, t, {a, b});
  EXPECT_EQ(mem.take_result(a)->status, OpStatus::Aborted);
  EXPECT_EQ(mem.take_result(b)->status, OpStatus::Completed);
  EXPECT_EQ(mem.peek_block(7), block_of(8, 0xB));
}

TEST(CfmMemory, Fig44SimultaneousEightBanks) {
  // The paper's Fig 4.4: simultaneous writes starting at banks 1 and 5 of
  // an 8-bank module; the one reaching bank 0 first (processor 5's op,
  // which starts at bank 5 and reaches bank 0 after 3 slots) survives.
  CfmMemory mem(CfmConfig::make(8, 1), ConsistencyPolicy::LatestWins);
  Cycle t = 0;
  const auto c = mem.issue(0, 1, BlockOpKind::Write, 7, block_of(8, 0xC));
  const auto d = mem.issue(0, 5, BlockOpKind::Write, 7, block_of(8, 0xD));
  run_until_done(mem, t, {c, d});
  EXPECT_EQ(mem.take_result(c)->status, OpStatus::Aborted);
  EXPECT_EQ(mem.take_result(d)->status, OpStatus::Completed);
  EXPECT_EQ(mem.peek_block(7), block_of(8, 0xD));
}

TEST(CfmMemory, StaggeredWritesWithExpiredEntryBothComplete) {
  // If the second write starts after the first's ATT entry could matter
  // (>= b slots later), both complete and the later data stands.
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::LatestWins);
  Cycle t = 0;
  const auto a = mem.issue(0, 0, BlockOpKind::Write, 7, block_of(4, 1));
  while (t < 6) mem.tick(t++);
  const auto b = mem.issue(6, 0, BlockOpKind::Write, 7, block_of(4, 2));
  run_until_done(mem, t, {a, b});
  EXPECT_EQ(mem.take_result(a)->status, OpStatus::Completed);
  EXPECT_EQ(mem.take_result(b)->status, OpStatus::Completed);
  EXPECT_EQ(mem.peek_block(7), block_of(4, 2));
}

TEST(CfmMemory, Fig45ReadRestartsAndReturnsNewVersion) {
  CfmMemory mem(CfmConfig::make(8, 1), ConsistencyPolicy::LatestWins);
  mem.poke_block(5, block_of(8, 0));
  Cycle t = 0;
  const auto e = mem.issue(0, 1, BlockOpKind::Read, 5);
  const auto f = mem.issue(0, 3, BlockOpKind::Write, 5, block_of(8, 9));
  run_until_done(mem, t, {e, f});
  const auto re = *mem.take_result(e);
  EXPECT_EQ(re.status, OpStatus::Completed);
  EXPECT_GE(re.restarts, 1u);
  EXPECT_EQ(re.data, block_of(8, 9)) << "restarted read sees one version";
}

TEST(CfmMemory, ReadAheadOfWriteSeesOldVersion) {
  // A read that passes the writer's start bank before the write begins
  // reads entirely old data — also consistent.
  CfmMemory mem(CfmConfig::make(8, 1), ConsistencyPolicy::LatestWins);
  mem.poke_block(5, block_of(8, 1));
  Cycle t = 0;
  const auto e = mem.issue(0, 3, BlockOpKind::Read, 5);  // starts at bank 3
  mem.tick(t++);
  // Write starts at bank 3 too (proc 2 at slot 1): the read has passed it.
  const auto f = mem.issue(1, 2, BlockOpKind::Write, 5, block_of(8, 9));
  run_until_done(mem, t, {e, f});
  const auto re = *mem.take_result(e);
  EXPECT_EQ(re.restarts, 0u);
  EXPECT_EQ(re.data, block_of(8, 1));
}

TEST(CfmMemory, SwapReturnsOldAndStoresNew) {
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::EarliestWins);
  mem.poke_block(3, std::vector<Word>{1, 2, 3, 4});
  Cycle t = 0;
  const auto s = mem.issue(0, 2, BlockOpKind::Swap, 3, block_of(4, 7));
  run_until_done(mem, t, {s});
  const auto r = *mem.take_result(s);
  EXPECT_EQ(r.status, OpStatus::Completed);
  EXPECT_EQ(r.data, (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_EQ(mem.peek_block(3), block_of(4, 7));
  // Timing: read tour + write tour = 2b + c - 1 total from issue.
  EXPECT_EQ(r.completed - r.issued, 2u * 4u);
}

TEST(CfmMemory, SwapRequiresEarliestWins) {
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::LatestWins);
  EXPECT_THROW(mem.issue(0, 0, BlockOpKind::Swap, 3, block_of(4, 7)),
               std::logic_error);
}

TEST(CfmMemory, Fig46SwapSwapSerializes) {
  // Two concurrent swaps on one block: result equals one of the two
  // sequential orders — one sees the initial value, the other sees the
  // first one's data.
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::EarliestWins);
  mem.poke_block(3, block_of(4, 0));
  Cycle t = 0;
  const auto s0 = mem.issue(0, 0, BlockOpKind::Swap, 3, block_of(4, 100));
  const auto s1 = mem.issue(0, 1, BlockOpKind::Swap, 3, block_of(4, 200));
  run_until_done(mem, t, {s0, s1});
  const auto r0 = *mem.take_result(s0);
  const auto r1 = *mem.take_result(s1);
  ASSERT_EQ(r0.status, OpStatus::Completed);
  ASSERT_EQ(r1.status, OpStatus::Completed);
  const auto final = mem.peek_block(3);
  const bool order_01 = r0.data == block_of(4, 0) &&
                        r1.data == block_of(4, 100) &&
                        final == block_of(4, 200);
  const bool order_10 = r1.data == block_of(4, 0) &&
                        r0.data == block_of(4, 200) &&
                        final == block_of(4, 100);
  EXPECT_TRUE(order_01 || order_10)
      << "swaps must appear in some sequential order";
}

TEST(CfmMemory, Fig46WriteVsSwapWriteRestartsAndLands) {
  // A plain write that meets a swap restarts; its value must land after
  // the swap completes, so the final block is the plain write's data and
  // the swap still observed a consistent pre-image.
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::EarliestWins);
  mem.poke_block(3, block_of(4, 0));
  Cycle t = 0;
  const auto s = mem.issue(0, 0, BlockOpKind::Swap, 3, block_of(4, 50));
  mem.tick(t++);
  mem.tick(t++);
  mem.tick(t++);
  mem.tick(t++);
  // Swap is now in its write phase; issue a plain write.
  const auto w = mem.issue(t, 2, BlockOpKind::Write, 3, block_of(4, 77));
  run_until_done(mem, t, {s, w});
  EXPECT_EQ(mem.take_result(s)->status, OpStatus::Completed);
  const auto rw = *mem.take_result(w);
  EXPECT_EQ(rw.status, OpStatus::Completed);
  EXPECT_EQ(mem.peek_block(3), block_of(4, 77));
}

TEST(CfmMemory, RmwAppliesModifyFunction) {
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::EarliestWins);
  mem.poke_block(3, std::vector<Word>{5, 6, 7, 8});
  Cycle t = 0;
  const auto op = mem.issue(0, 0, BlockOpKind::Swap, 3, {},
                            [](const std::vector<Word>& in) {
                              auto out = in;
                              for (auto& w : out) w *= 10;
                              return out;
                            });
  run_until_done(mem, t, {op});
  EXPECT_EQ(mem.take_result(op)->data, (std::vector<Word>{5, 6, 7, 8}));
  EXPECT_EQ(mem.peek_block(3), (std::vector<Word>{50, 60, 70, 80}));
}

TEST(CfmMemory, IssueWhileBusyThrows) {
  CfmMemory mem(CfmConfig::make(4, 1));
  (void)mem.issue(0, 0, BlockOpKind::Read, 1);
  EXPECT_FALSE(mem.idle(0));
  EXPECT_THROW(mem.issue(0, 0, BlockOpKind::Read, 2), std::logic_error);
}

TEST(CfmMemory, ProtocolKindsRejected) {
  CfmMemory mem(CfmConfig::make(4, 1));
  EXPECT_THROW(mem.issue(0, 0, BlockOpKind::ProtoRead, 1), std::logic_error);
}

TEST(CfmMemory, WriteDataSizeValidated) {
  CfmMemory mem(CfmConfig::make(4, 1));
  EXPECT_THROW(mem.issue(0, 0, BlockOpKind::Write, 1, block_of(3, 1)),
               std::invalid_argument);
}

}  // namespace
