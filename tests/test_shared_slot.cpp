// Tests for slot oversubscription (§7.2): sharing AT-space slots trades
// conflict-freedom for utilization.
#include <gtest/gtest.h>

#include "cfm/shared_slot.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::Cycle;

TEST(SharedSlotFabric, ShapeValidation) {
  EXPECT_THROW(SharedSlotFabric(7, 3, 17), std::invalid_argument);
  EXPECT_THROW(SharedSlotFabric(8, 4, 0), std::invalid_argument);
}

TEST(SharedSlotFabric, OneSharerNeverConflicts) {
  SharedSlotFabric fabric(4, 4, 17);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_NE(fabric.try_access(p, 0), cfm::sim::kNeverCycle);
  }
  EXPECT_EQ(fabric.conflicts(), 0u);
}

TEST(SharedSlotFabric, SlotSharersConflict) {
  SharedSlotFabric fabric(8, 4, 17);
  // Processors 0 and 4 share slot 0.
  EXPECT_EQ(fabric.slot_of(0), fabric.slot_of(4));
  EXPECT_NE(fabric.try_access(0, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(fabric.try_access(4, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(fabric.conflicts(), 1u);
  // The slot frees after beta.
  EXPECT_NE(fabric.try_access(4, 17), cfm::sim::kNeverCycle);
}

TEST(SharedSlotFabric, DifferentSlotsIndependent) {
  SharedSlotFabric fabric(8, 4, 17);
  EXPECT_NE(fabric.try_access(0, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(fabric.try_access(1, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(fabric.try_access(2, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(fabric.try_access(3, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(fabric.conflicts(), 0u);
}

TEST(SharedSlotModel, DegeneratesToConflictFree) {
  SharedSlotModel model{8, 8, 17};  // one processor per slot
  EXPECT_DOUBLE_EQ(model.conflict_probability(0.05), 0.0);
  EXPECT_DOUBLE_EQ(model.efficiency(0.05), 1.0);
}

TEST(SharedSlotModel, MoreSharersMoreConflictsMoreUtilization) {
  SharedSlotModel two{8, 4, 17};   // 2 sharers per slot
  SharedSlotModel four{16, 4, 17}; // 4 sharers per slot
  EXPECT_GT(four.conflict_probability(0.02), two.conflict_probability(0.02));
  EXPECT_LT(four.efficiency(0.02), two.efficiency(0.02));
  EXPECT_GT(four.slot_utilization(0.02), two.slot_utilization(0.02));
}

TEST(SharedSlotMeasured, MatchesModelShape) {
  const auto exclusive = measure_shared_slots(8, 8, 17, 0.02, 150000, 5);
  const auto doubled = measure_shared_slots(16, 8, 17, 0.02, 150000, 5);
  // Exclusive slots: conflict-free and exactly beta.
  EXPECT_DOUBLE_EQ(exclusive.efficiency, 1.0);
  EXPECT_EQ(exclusive.conflicts, 0u);
  // Oversubscribed: lower efficiency, higher slot utilization.
  EXPECT_LT(doubled.efficiency, 1.0);
  EXPECT_GT(doubled.conflicts, 0u);
  EXPECT_GT(doubled.utilization, exclusive.utilization * 1.5);
}

TEST(SharedSlotMeasured, TracksAnalyticEfficiency) {
  SharedSlotModel model{16, 8, 17};
  const auto sim = measure_shared_slots(16, 8, 17, 0.015, 200000, 9);
  EXPECT_NEAR(sim.efficiency, model.efficiency(0.015), 0.08);
}

}  // namespace
