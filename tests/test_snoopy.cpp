// Tests for the snoopy MSI bus baseline (§5.1.1).
#include <gtest/gtest.h>

#include "cache/snoopy.hpp"
#include "cache/sync_ops.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;
using cfm::sim::Word;

SnoopyBus::Params small() {
  SnoopyBus::Params p;
  p.processors = 4;
  p.block_words = 4;
  p.block_cycles = 4;
  return p;
}

SnoopyBus::Outcome run_one(SnoopyBus& sys, Cycle& t, SnoopyBus::ReqId id) {
  for (int i = 0; i < 5000; ++i) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(id)) return *r;
  }
  ADD_FAILURE() << "request timed out";
  return {};
}

TEST(Snoopy, LoadMissFillsValid) {
  SnoopyBus sys(small());
  sys.poke_memory(9, {1, 2, 3, 4});
  Cycle t = 0;
  const auto r = run_one(sys, t, sys.load(t, 0, 9));
  EXPECT_EQ(r.data, (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_EQ(sys.line_state(0, 9), LineState::Valid);
}

TEST(Snoopy, LoadHitIsLocal) {
  SnoopyBus sys(small());
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 0, 9));
  const auto r = run_one(sys, t, sys.load(t, 0, 9));
  EXPECT_TRUE(r.local_hit);
  EXPECT_EQ(r.completed - r.issued, 1u);
}

TEST(Snoopy, StoreInvalidatesSharers) {
  SnoopyBus sys(small());
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 0, 9));
  (void)run_one(sys, t, sys.load(t, 2, 9));
  (void)run_one(sys, t, sys.store(t, 1, 9, 0, 7));
  EXPECT_EQ(sys.line_state(0, 9), LineState::Invalid);
  EXPECT_EQ(sys.line_state(2, 9), LineState::Invalid);
  EXPECT_EQ(sys.line_state(1, 9), LineState::Dirty);
  EXPECT_EQ(sys.counters().get("invalidations"), 2u);
}

TEST(Snoopy, DirtyOwnerFlushesOnRemoteRead) {
  SnoopyBus sys(small());
  Cycle t = 0;
  (void)run_one(sys, t, sys.store(t, 1, 9, 0, 7));
  const auto r = run_one(sys, t, sys.load(t, 3, 9));
  EXPECT_EQ(r.data.at(0), 7u);
  EXPECT_EQ(sys.line_state(1, 9), LineState::Valid);
  EXPECT_EQ(sys.counters().get("snoop_flushes"), 1u);
}

TEST(Snoopy, BusSerializesTransactions) {
  SnoopyBus sys(small());
  Cycle t = 0;
  const auto a = sys.load(t, 0, 1);
  const auto b = sys.load(t, 1, 2);
  const auto c = sys.load(t, 2, 3);
  Cycle done_a = 0;
  Cycle done_b = 0;
  Cycle done_c = 0;
  for (int i = 0; i < 200; ++i) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(a)) done_a = r->completed;
    if (auto r = sys.take_result(b)) done_b = r->completed;
    if (auto r = sys.take_result(c)) done_c = r->completed;
    if (done_a && done_b && done_c) break;
  }
  // Even to *different* blocks, transactions serialize on the one bus —
  // exactly what the CFM interconnect avoids.
  EXPECT_LT(done_a, done_b);
  EXPECT_LT(done_b, done_c);
  EXPECT_GE(done_c - done_a, 2u * small().block_cycles);
}

TEST(Snoopy, RmwAtomicCounter) {
  SnoopyBus sys(small());
  Cycle t = 0;
  std::vector<SnoopyBus::ReqId> live(4, 0);
  std::uint64_t done = 0;
  const auto inc = [](const std::vector<Word>& in) {
    auto out = in;
    out[0] += 1;
    return out;
  };
  for (; t < 4000; ++t) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      if (live[p] != 0 && sys.take_result(live[p])) {
        live[p] = 0;
        ++done;
      }
      if (live[p] == 0 && done + 4 < 60 && sys.processor_idle(p)) {
        live[p] = sys.rmw(t, p, 5, inc);
      }
    }
    sys.tick(t);
  }
  for (int i = 0; i < 200; ++i) sys.tick(t++);
  for (auto& id : live) {
    if (id != 0 && sys.take_result(id)) ++done;
  }
  EXPECT_EQ(sys.memory_block(5).at(0), done);
}

TEST(Snoopy, BusyLockClientWorksOnTheBus) {
  SnoopyBus sys(small());
  std::vector<BusyLockClient<SnoopyBus>> clients;
  for (std::uint32_t p = 0; p < 4; ++p) clients.emplace_back(p, 7);
  for (auto& c : clients) c.acquire();
  std::uint64_t acq = 0;
  for (Cycle t = 0; t < 8000; ++t) {
    int holders = 0;
    for (auto& c : clients) {
      if (c.holding()) {
        ++holders;
        ++acq;
        c.release();
      }
    }
    ASSERT_LE(holders, 1);
    for (auto& c : clients) {
      c.tick(t, sys);
      if (c.state() == BusyLockClient<SnoopyBus>::State::Idle) c.acquire();
    }
    sys.tick(t);
  }
  EXPECT_GT(acq, 20u);
  EXPECT_GT(sys.bus_busy_cycles(), 0u);
}

}  // namespace
