// Tests for the partially synchronous omega (§3.2.2): Table 3.5
// configurations, contention sets, conflict-free clusters, and the
// channel-resource fabric.
#include <gtest/gtest.h>

#include "net/partial_omega.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cfm::net;
using cfm::sim::Cycle;

TEST(PartialConfigs, Table35For64Banks) {
  const auto rows = enumerate_partial_configs(64);
  ASSERT_EQ(rows.size(), 7u);
  // Table 3.5 rows: modules / banks / block / circuit cols / clock cols.
  const std::uint32_t expect[7][5] = {
      {1, 64, 64, 0, 6}, {2, 32, 32, 1, 5},  {4, 16, 16, 2, 4},
      {8, 8, 8, 3, 3},   {16, 4, 4, 4, 2},   {32, 2, 2, 5, 1},
      {64, 1, 1, 6, 0},
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].modules, expect[i][0]);
    EXPECT_EQ(rows[i].banks_per_module, expect[i][1]);
    EXPECT_EQ(rows[i].block_words, expect[i][2]);
    EXPECT_EQ(rows[i].circuit_columns, expect[i][3]);
    EXPECT_EQ(rows[i].clock_columns, expect[i][4]);
  }
  EXPECT_TRUE(rows.front().fully_conflict_free());
  EXPECT_TRUE(rows.back().fully_conventional());
}

TEST(PartialOmega, ContentionSetsMatchFig311) {
  // Fig 3.11a: 8 banks, 4 two-bank modules -> sets {0,2,4,6} / {1,3,5,7}.
  PartialOmega a(8, 4);
  EXPECT_EQ(a.contention_sets(), 2u);
  EXPECT_EQ(a.contention_set(0), a.contention_set(2));
  EXPECT_EQ(a.contention_set(0), a.contention_set(6));
  EXPECT_NE(a.contention_set(0), a.contention_set(1));
  // Fig 3.11b: 2 four-bank modules -> sets (0,4),(1,5),(2,6),(3,7).
  PartialOmega b(8, 2);
  EXPECT_EQ(b.contention_sets(), 4u);
  EXPECT_EQ(b.contention_set(1), b.contention_set(5));
  EXPECT_NE(b.contention_set(1), b.contention_set(2));
}

TEST(PartialOmega, BankWithinModuleFollowsClock) {
  PartialOmega po(8, 2);  // modules of 4 banks
  for (Cycle t = 0; t < 8; ++t) {
    for (Port p = 0; p < 8; ++p) {
      const auto bank = po.bank_for(t, p, 1);
      EXPECT_GE(bank, 4u);  // module 1 owns banks 4..7
      EXPECT_LT(bank, 8u);
      EXPECT_EQ(bank, 4 + (t + (p % 4)) % 4);
    }
  }
}

TEST(PartialOmega, SameContentionSetSameModuleConflicts) {
  PartialOmega po(8, 2);
  // Processors 1 and 5 share a contention set.
  EXPECT_TRUE(po.conflicts(0, 1, 0, 5, 0));
}

class ClusterConflictFreedom
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(ClusterConflictFreedom, OnePerContentionSetNeverConflicts) {
  // §3.2.2: "Processors in the cluster do not conflict with each other in
  // accessing the memory modules" — whatever modules they pick and at
  // whatever slot.  Cluster k = processors {k*S .. k*S+S-1} (one member
  // of every contention set).
  const auto [ports, modules] = GetParam();
  PartialOmega po(ports, modules);
  const auto sub = po.banks_per_module();
  cfm::sim::Rng rng(31 + ports + modules);
  for (int trial = 0; trial < 200; ++trial) {
    const auto cluster = static_cast<Port>(rng.below(ports / sub));
    const Cycle t = rng.below(64);
    std::vector<Port> members(sub);
    std::vector<std::uint32_t> mods(sub);
    for (std::uint32_t i = 0; i < sub; ++i) {
      members[i] = cluster * sub + i;
      mods[i] = static_cast<std::uint32_t>(rng.below(modules));
    }
    for (std::uint32_t i = 0; i < sub; ++i) {
      for (std::uint32_t j = i + 1; j < sub; ++j) {
        EXPECT_FALSE(po.conflicts(t, members[i], mods[i], members[j], mods[j]))
            << "ports=" << ports << " modules=" << modules << " t=" << t
            << " members " << members[i] << "->" << mods[i] << " vs "
            << members[j] << "->" << mods[j];
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterConflictFreedom,
    ::testing::Values(std::make_pair(8u, 2u), std::make_pair(8u, 4u),
                      std::make_pair(16u, 4u), std::make_pair(32u, 8u),
                      std::make_pair(64u, 8u), std::make_pair(64u, 16u)));

TEST(PartialCfmFabric, LocalAccessesNeverConflictAcrossACluster) {
  PartialCfmFabric fabric(16, 4, 17);
  // All 4 processors of cluster 0 hit their home module simultaneously.
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_NE(fabric.try_access(p, 0, 0), cfm::sim::kNeverCycle);
  }
  EXPECT_EQ(fabric.conflicts(), 0u);
}

TEST(PartialCfmFabric, RemoteCollisionOnSameChannelConflicts) {
  PartialCfmFabric fabric(16, 4, 17);
  // Processors 0 and 4 share channel 0; both target module 2.
  EXPECT_NE(fabric.try_access(0, 2, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(fabric.try_access(4, 2, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(fabric.conflicts(), 1u);
  // Channel frees after beta.
  EXPECT_NE(fabric.try_access(4, 2, 17), cfm::sim::kNeverCycle);
}

TEST(PartialCfmFabric, DifferentChannelsIndependent) {
  PartialCfmFabric fabric(16, 4, 17);
  EXPECT_NE(fabric.try_access(0, 2, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(fabric.try_access(1, 2, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(fabric.try_access(2, 2, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(fabric.conflicts(), 0u);
}

TEST(PartialCfmFabric, RejectsBadShape) {
  EXPECT_THROW(PartialCfmFabric(10, 4, 17), std::invalid_argument);
}

}  // namespace
