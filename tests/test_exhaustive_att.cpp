// Exhaustive two-operation sweeps of the ATT consistency rules: every
// combination of processors and issue offsets for (write, write) and
// (read, write) pairs.  These cover all the per-bank interleavings the
// Chapter 4 figures sample, including every tie and every entry-expiry
// boundary.
#include <gtest/gtest.h>

#include <vector>

#include "cfm/cfm_memory.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::BlockAddr;
using cfm::sim::Cycle;
using cfm::sim::Word;

std::vector<Word> fill(std::uint32_t n, Word v) {
  return std::vector<Word>(n, v);
}

class ExhaustivePairs : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ExhaustivePairs, WriteWriteAlwaysConvergesToOneVersion) {
  const auto b = GetParam();
  for (std::uint32_t pX = 0; pX < b; ++pX) {
    for (std::uint32_t pY = 0; pY < b; ++pY) {
      if (pX == pY) continue;
      for (Cycle dt = 0; dt <= b + 1; ++dt) {
        CfmMemory mem(CfmConfig::make(b), ConsistencyPolicy::LatestWins);
        mem.poke_block(7, fill(b, 0));
        Cycle t = 0;
        const auto x = mem.issue(0, pX, BlockOpKind::Write, 7, fill(b, 1));
        while (t < dt) mem.tick(t++);
        const auto y = mem.issue(dt, pY, BlockOpKind::Write, 7, fill(b, 2));
        while (mem.result(x) == nullptr || mem.result(y) == nullptr) {
          mem.tick(t++);
        }
        const auto rx = *mem.take_result(x);
        const auto ry = *mem.take_result(y);
        const auto block = mem.peek_block(7);
        // Invariant 1: memory holds exactly one write's data, uniformly.
        for (const Word w : block) {
          ASSERT_EQ(w, block[0])
              << "torn b=" << b << " pX=" << pX << " pY=" << pY
              << " dt=" << dt;
        }
        ASSERT_TRUE(block[0] == 1 || block[0] == 2);
        // Invariant 2: the surviving data belongs to a COMPLETED op, and
        // an aborted op's data never persists.
        if (block[0] == 1) {
          ASSERT_EQ(rx.status, OpStatus::Completed);
        } else {
          ASSERT_EQ(ry.status, OpStatus::Completed);
        }
        // Invariant 3: under LatestWins, if the later write completed,
        // its data is what persists.
        if (dt > 0 && ry.status == OpStatus::Completed) {
          ASSERT_EQ(block[0], 2u)
              << "later writer completed but lost: b=" << b << " pX=" << pX
              << " pY=" << pY << " dt=" << dt;
        }
      }
    }
  }
}

TEST_P(ExhaustivePairs, ReadWritePairNeverTearsTheRead) {
  const auto b = GetParam();
  for (std::uint32_t pR = 0; pR < b; ++pR) {
    for (std::uint32_t pW = 0; pW < b; ++pW) {
      if (pR == pW) continue;
      for (Cycle dt = 0; dt <= b + 1; ++dt) {
        CfmMemory mem(CfmConfig::make(b), ConsistencyPolicy::LatestWins);
        mem.poke_block(5, fill(b, 1));
        Cycle t = 0;
        const auto r = mem.issue(0, pR, BlockOpKind::Read, 5);
        while (t < dt) mem.tick(t++);
        const auto w = mem.issue(dt, pW, BlockOpKind::Write, 5, fill(b, 2));
        while (mem.result(r) == nullptr || mem.result(w) == nullptr) {
          mem.tick(t++);
        }
        const auto rr = *mem.take_result(r);
        ASSERT_EQ(rr.status, OpStatus::Completed);
        for (const Word word : rr.data) {
          ASSERT_EQ(word, rr.data[0])
              << "torn read: b=" << b << " pR=" << pR << " pW=" << pW
              << " dt=" << dt;
        }
        ASSERT_TRUE(rr.data[0] == 1 || rr.data[0] == 2);
      }
    }
  }
}

TEST_P(ExhaustivePairs, WriteReadPairNeverTearsTheRead) {
  // The mirror ordering: the read is issued at or after the write.
  const auto b = GetParam();
  for (std::uint32_t pR = 0; pR < b; ++pR) {
    for (std::uint32_t pW = 0; pW < b; ++pW) {
      if (pR == pW) continue;
      for (Cycle dt = 0; dt <= b + 1; ++dt) {
        CfmMemory mem(CfmConfig::make(b), ConsistencyPolicy::LatestWins);
        mem.poke_block(5, fill(b, 1));
        Cycle t = 0;
        const auto w = mem.issue(0, pW, BlockOpKind::Write, 5, fill(b, 2));
        while (t < dt) mem.tick(t++);
        const auto r = mem.issue(dt, pR, BlockOpKind::Read, 5);
        while (mem.result(r) == nullptr || mem.result(w) == nullptr) {
          mem.tick(t++);
        }
        const auto rr = *mem.take_result(r);
        for (const Word word : rr.data) {
          ASSERT_EQ(word, rr.data[0])
              << "torn read: b=" << b << " pR=" << pR << " pW=" << pW
              << " dt=" << dt;
        }
        // A read issued a full tour after the write completed must see
        // the new data (coherence of the ordering).
        if (dt >= 2 * b) {
          ASSERT_EQ(rr.data[0], 2u);
        }
      }
    }
  }
}

TEST_P(ExhaustivePairs, SwapPairsSerializeAtEveryOffset) {
  const auto b = GetParam();
  for (std::uint32_t p1 = 0; p1 < b; ++p1) {
    for (Cycle dt = 0; dt <= b; ++dt) {
      const std::uint32_t p0 = 0;
      if (p1 == p0) continue;
      CfmMemory mem(CfmConfig::make(b), ConsistencyPolicy::EarliestWins);
      mem.poke_block(3, fill(b, 0));
      Cycle t = 0;
      const auto s0 = mem.issue(0, p0, BlockOpKind::Swap, 3, fill(b, 10));
      while (t < dt) mem.tick(t++);
      const auto s1 = mem.issue(dt, p1, BlockOpKind::Swap, 3, fill(b, 20));
      while (mem.result(s0) == nullptr || mem.result(s1) == nullptr) {
        mem.tick(t++);
      }
      const auto r0 = *mem.take_result(s0);
      const auto r1 = *mem.take_result(s1);
      ASSERT_EQ(r0.status, OpStatus::Completed);
      ASSERT_EQ(r1.status, OpStatus::Completed);
      const auto block = mem.peek_block(3);
      const bool order01 = r0.data == fill(b, 0) && r1.data == fill(b, 10) &&
                           block == fill(b, 20);
      const bool order10 = r1.data == fill(b, 0) && r0.data == fill(b, 20) &&
                           block == fill(b, 10);
      ASSERT_TRUE(order01 || order10)
          << "swaps not serializable: b=" << b << " p1=" << p1
          << " dt=" << dt;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BankCounts, ExhaustivePairs,
                         ::testing::Values(4u, 8u));

}  // namespace
