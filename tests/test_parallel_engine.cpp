// Tests for the parallel tick scheduler: WorkerPool semantics, the phase
// barrier contract, and the headline determinism guarantee — a
// ParallelEngine run is bit-exact with the serial Engine because tick
// domains share no mutable state (see component.hpp / DESIGN.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "cache/hierarchical.hpp"
#include "cfm/cfm_memory.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/report.hpp"
#include "sim/rng.hpp"
#include "workload/access_gen.hpp"

namespace {

using namespace cfm;
using sim::Cycle;
using sim::DomainId;
using sim::Engine;
using sim::EngineConfig;
using sim::ParallelEngine;
using sim::Phase;
using sim::StatShard;
using sim::WorkerPool;

// ---------------------------------------------------------------- pool --

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  constexpr std::size_t kJobs = 1000;
  std::vector<std::atomic<std::uint32_t>> hits(kJobs);
  pool.run(kJobs, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1u);
}

TEST(WorkerPool, IsReusableAcrossManyDispatches) {
  WorkerPool pool(2);
  std::atomic<std::uint64_t> total{0};
  constexpr std::size_t kJobs = 64;
  constexpr int kRounds = 200;
  for (int r = 0; r < kRounds; ++r) {
    pool.run(kJobs, [&total](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), kRounds * (kJobs * (kJobs + 1) / 2));
}

TEST(WorkerPool, HandlesZeroAndOneJob) {
  WorkerPool pool(4);
  std::atomic<int> n{0};
  pool.run(0, [&n](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 0);
  pool.run(1, [&n](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 1);
}

// -------------------------------------------------------------- engine --

TEST(ParallelEngine, MakeSelectsEngineByThreadCount) {
  auto serial = Engine::make(EngineConfig{1});
  auto parallel = Engine::make(EngineConfig{4});
  EXPECT_EQ(dynamic_cast<ParallelEngine*>(serial.get()), nullptr);
  auto* pe = dynamic_cast<ParallelEngine*>(parallel.get());
  ASSERT_NE(pe, nullptr);
  EXPECT_EQ(pe->num_threads(), 4u);
}

TEST(ParallelEngine, SingleThreadConfigStaysSerial) {
  ParallelEngine engine(EngineConfig{1});
  EXPECT_EQ(engine.num_threads(), 1u);
  int ticks = 0;
  engine.on(Phase::Memory, [&ticks](Cycle) { ++ticks; });
  engine.run_for(5);
  EXPECT_EQ(ticks, 5);
  EXPECT_EQ(engine.now(), 5u);
}

// Every phase ends with a barrier: work done by the independent domains
// of phase k must be visible to the shared-domain components of phase
// k+1, every cycle, whatever the thread interleaving.
TEST(ParallelEngine, PhaseBarrierMakesDomainWritesVisible) {
  constexpr std::size_t kDomains = 32;
  ParallelEngine engine(EngineConfig{8});
  std::vector<std::uint64_t> slots(kDomains, 0);
  for (std::size_t i = 0; i < kDomains; ++i) {
    const auto d = engine.allocate_domain();
    engine.add(std::make_shared<sim::LambdaComponent>(
        "writer#" + std::to_string(i), d, Phase::Issue,
        [&slots, i](Cycle now) { slots[i] = now + 1; }));
  }
  std::uint64_t mismatches = 0;
  engine.on(Phase::Network, [&slots, &mismatches](Cycle now) {
    for (auto v : slots) {
      if (v != now + 1) ++mismatches;
    }
  });
  engine.run_for(500);
  EXPECT_EQ(mismatches, 0u);
}

// -------------------------------------------- serial/parallel bit-exact --

void expect_same_stats(const StatShard& a, const StatShard& b) {
  EXPECT_EQ(a.counters.all(), b.counters.all());
  ASSERT_EQ(a.running.size(), b.running.size());
  auto ib = b.running.begin();
  for (const auto& [name, stat] : a.running) {
    EXPECT_EQ(name, ib->first);
    EXPECT_EQ(stat.count(), ib->second.count()) << name;
    EXPECT_EQ(stat.mean(), ib->second.mean()) << name;
    EXPECT_EQ(stat.min(), ib->second.min()) << name;
    EXPECT_EQ(stat.max(), ib->second.max()) << name;
    EXPECT_EQ(stat.variance(), ib->second.variance()) << name;
    ++ib;
  }
}

// A multi-module machine: independent CfmMemory instances, each with its
// own closed-loop driver in its own tick domain.
struct ModuleFarm {
  std::vector<std::unique_ptr<core::CfmMemory>> mems;
  std::vector<std::unique_ptr<workload::AccessDriver>> drivers;

  void build(Engine& engine, std::uint32_t modules, std::uint32_t procs) {
    for (std::uint32_t m = 0; m < modules; ++m) {
      mems.push_back(std::make_unique<core::CfmMemory>(
          core::CfmConfig::make(procs, 2)));
      const auto domain = engine.allocate_domain();
      mems.back()->attach(engine, domain);
      drivers.push_back(std::make_unique<workload::AccessDriver>(
          "driver#" + std::to_string(m), domain, *mems.back(), 0.7,
          /*seed=*/0xfeedULL + m, engine.shard(domain)));
      engine.add(*drivers.back());
    }
  }
};

TEST(ParallelEngine, MultiModuleFarmMatchesSerialBitExact) {
  constexpr std::uint32_t kModules = 8;
  constexpr std::uint32_t kProcs = 8;
  constexpr Cycle kCycles = 1500;

  Engine serial;
  ModuleFarm a;
  a.build(serial, kModules, kProcs);
  serial.run_for(kCycles);

  ParallelEngine parallel(EngineConfig{4});
  ModuleFarm b;
  b.build(parallel, kModules, kProcs);
  parallel.run_for(kCycles);

  expect_same_stats(serial.merged_stats(), parallel.merged_stats());
  for (std::uint32_t m = 0; m < kModules; ++m) {
    EXPECT_EQ(a.drivers[m]->completed(), b.drivers[m]->completed());
    EXPECT_GT(a.drivers[m]->completed(), 0u);
    EXPECT_EQ(a.mems[m]->counters().all(), b.mems[m]->counters().all());
    for (std::uint32_t p = 0; p < kProcs; ++p) {
      const sim::BlockAddr addr = 1000 + p * 7919;
      EXPECT_EQ(a.mems[m]->peek_block(addr), b.mems[m]->peek_block(addr));
    }
  }
}

// ----------------------------------------- hierarchical acceptance test --

// Shared-domain request generator for a HierarchicalCfm: issues reads and
// writes from 64 processors over a small shared block set (so lines
// migrate between clusters and the dirty-remote chains exercise the
// cross-domain controller) and records every outcome in processor order.
class HierDriver final : public sim::Component {
 public:
  struct Record {
    sim::ProcessorId proc;
    cache::HierarchicalCfm::AccessClass cls;
    bool is_write;
    Cycle issued;
    Cycle completed;
    std::uint32_t invalidations;
    bool operator==(const Record&) const = default;
  };

  HierDriver(cache::HierarchicalCfm& sys, std::uint64_t seed)
      : Component("test.hier_driver", sim::kSharedDomain,
                  sim::phase_bit(Phase::Issue)),
        sys_(sys),
        rng_(seed),
        pending_(sys.processor_count(), 0) {}

  void tick_phase(Phase, Cycle now) override {
    const auto n = static_cast<sim::ProcessorId>(pending_.size());
    for (sim::ProcessorId p = 0; p < n; ++p) {
      if (pending_[p] != 0) {
        if (auto r = sys_.take_result(pending_[p])) {
          outcomes.push_back({p, r->cls, r->is_write, r->issued, r->completed,
                              r->invalidations});
          pending_[p] = 0;
        }
      }
      if (pending_[p] == 0 && sys_.processor_idle(p) && rng_.chance(0.3)) {
        const auto offset = static_cast<sim::BlockAddr>(rng_.below(24));
        if (rng_.chance(0.25)) {
          pending_[p] = sys_.write(now, p, offset, /*word_index=*/0,
                                   static_cast<sim::Word>(now & 0xff));
        } else {
          pending_[p] = sys_.read(now, p, offset);
        }
      }
    }
  }

  std::vector<Record> outcomes;

 private:
  cache::HierarchicalCfm& sys_;
  sim::Rng rng_;
  std::vector<cache::HierarchicalCfm::ReqId> pending_;
};

struct HierRig {
  cache::HierarchicalCfm sys;
  HierDriver driver;
  std::vector<std::vector<std::string>> traces;  // one per cluster

  explicit HierRig(Engine& engine)
      : sys({.clusters = 8, .procs_per_cluster = 8}), driver(sys, 0xc0ffee) {
    sys.attach(engine);
    engine.add(driver);
    traces.resize(8);
    for (std::uint32_t c = 0; c < 8; ++c) {
      auto* sink = &traces[c];
      sys.cluster_memory(c).set_trace(
          [sink](std::string_view line) { sink->emplace_back(line); });
    }
  }
};

// ISSUE acceptance: ParallelEngine with 4 threads produces identical
// counters, op results, and per-domain trace event sequences to the
// serial engine on a 64-processor hierarchical workload.
TEST(ParallelEngine, HierarchicalWorkloadIsDeterministic) {
  constexpr Cycle kCycles = 4000;

  Engine serial;
  HierRig a(serial);
  serial.run_for(kCycles);

  ParallelEngine parallel(EngineConfig{4});
  HierRig b(parallel);
  parallel.run_for(kCycles);

  // Each cluster memory became its own tick domain, plus shared.
  EXPECT_EQ(parallel.domain_count(), 9u);

  // Op results, in the deterministic harvest order.
  ASSERT_GT(a.driver.outcomes.size(), 100u);
  EXPECT_EQ(a.driver.outcomes, b.driver.outcomes);

  // Protocol and per-memory counters.
  EXPECT_EQ(a.sys.counters().all(), b.sys.counters().all());
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_EQ(a.sys.cluster_memory(c).counters().all(),
              b.sys.cluster_memory(c).counters().all());
  }
  EXPECT_EQ(a.sys.global_memory().counters().all(),
            b.sys.global_memory().counters().all());

  // Per-domain trace event sequences (bank accesses, restarts,
  // completions inside each cluster's tick domain).
  bool any_trace = false;
  for (std::uint32_t c = 0; c < 8; ++c) {
    EXPECT_EQ(a.traces[c], b.traces[c]) << "cluster " << c;
    any_trace = any_trace || !a.traces[c].empty();
  }
  EXPECT_TRUE(any_trace);

  // Both machines end in a coherent state.
  EXPECT_TRUE(a.sys.check_state_coupling());
  EXPECT_TRUE(b.sys.check_state_coupling());
}

// ------------------------------------------------------------ profiler --

// ISSUE acceptance: the profiler reports per-phase and per-domain wall
// times on a parallel run without perturbing simulation results.
TEST(ParallelEngine, ProfilerReportsPhaseAndDomainTimings) {
  constexpr std::uint32_t kModules = 8;
  constexpr Cycle kCycles = 400;

  ParallelEngine engine(EngineConfig{4});
  ModuleFarm farm;
  farm.build(engine, kModules, 8);
  engine.enable_profiling();
  engine.run_for(kCycles);

  const auto& prof = engine.profile();
  EXPECT_EQ(prof.cycles, kCycles);
  EXPECT_EQ(prof.threads, 4u);

  // One sample per cycle, every phase, and nonzero accumulated time.
  double total = 0.0;
  for (const auto& phase : prof.phases) {
    EXPECT_EQ(phase.total_us.count(), kCycles);
    EXPECT_EQ(phase.shared_us.count(), kCycles);
    EXPECT_EQ(phase.domains_us.count(), kCycles);
    total += phase.total_us.sum();
  }
  EXPECT_GT(total, 0.0);

  // Every independent domain ticked under the pool and accrued time.
  ASSERT_EQ(prof.domain_us.size(), kModules + 1);
  EXPECT_EQ(prof.domain_us[sim::kSharedDomain], 0.0);
  double domain_total = 0.0;
  for (std::size_t d = 1; d < prof.domain_us.size(); ++d) {
    domain_total += prof.domain_us[d];
  }
  EXPECT_GT(domain_total, 0.0);

  // Parallel dispatches recorded pool utilization in (0, 1].
  ASSERT_GT(prof.utilization.count(), 0u);
  EXPECT_GT(prof.utilization.mean(), 0.0);
  EXPECT_LE(prof.utilization.max(), 1.0 + 1e-6);

  // The profile serializes into the report schema's section shape.
  const auto j = prof.to_json();
  EXPECT_EQ(j.at("cycles").as_uint(), kCycles);
  EXPECT_EQ(j.at("threads").as_uint(), 4u);
  EXPECT_TRUE(j.at("phases").is_object());
  EXPECT_TRUE(j.at("utilization").is_object());
}

TEST(Engine, SerialProfilerHasNoBarrierTime) {
  Engine engine;
  ModuleFarm farm;
  farm.build(engine, 4, 8);
  engine.enable_profiling();
  engine.run_for(100);

  const auto& prof = engine.profile();
  EXPECT_EQ(prof.cycles, 100u);
  EXPECT_EQ(prof.threads, 1u);
  for (const auto& phase : prof.phases) {
    // No pool, no barrier: idle-at-barrier time must be identically 0.
    EXPECT_EQ(phase.barrier_us.count() == 0 || phase.barrier_us.max() == 0.0,
              true);
  }
  EXPECT_EQ(prof.utilization.count(), 0u);
}

TEST(Engine, ResetProfileClearsCollectedSamples) {
  Engine engine;
  engine.on(Phase::Memory, [](Cycle) {});
  engine.enable_profiling();
  engine.run_for(10);
  EXPECT_EQ(engine.profile().cycles, 10u);
  engine.reset_profile();
  EXPECT_EQ(engine.profile().cycles, 0u);
  engine.run_for(5);
  EXPECT_EQ(engine.profile().cycles, 5u);
}

// ISSUE acceptance: serial/parallel bit-exactness holds WITH profiling
// enabled — the profiler only reads clocks.
TEST(ParallelEngine, ProfilingDoesNotPerturbResults) {
  constexpr std::uint32_t kModules = 8;
  constexpr std::uint32_t kProcs = 8;
  constexpr Cycle kCycles = 800;

  Engine serial;  // profiling off: the reference run
  ModuleFarm a;
  a.build(serial, kModules, kProcs);
  serial.run_for(kCycles);

  ParallelEngine parallel(EngineConfig{4});
  ModuleFarm b;
  b.build(parallel, kModules, kProcs);
  parallel.enable_profiling();
  parallel.run_for(kCycles);

  expect_same_stats(serial.merged_stats(), parallel.merged_stats());
  for (std::uint32_t m = 0; m < kModules; ++m) {
    EXPECT_EQ(a.drivers[m]->completed(), b.drivers[m]->completed());
    EXPECT_EQ(a.mems[m]->counters().all(), b.mems[m]->counters().all());
  }
}

TEST(ParallelEngine, ChromeTraceSinkRecordsPhaseEvents) {
  ParallelEngine engine(EngineConfig{2});
  ModuleFarm farm;
  farm.build(engine, 2, 4);
  sim::ChromeTrace trace;
  engine.set_chrome_trace(&trace);
  engine.enable_profiling();
  engine.run_for(3);
  // Per-phase duration events were emitted while profiling.
  EXPECT_GT(trace.event_count(), 0u);
}

// Thread count must not matter either: 2 and 8 threads agree with 4.
TEST(ParallelEngine, ThreadCountDoesNotChangeResults) {
  constexpr Cycle kCycles = 600;
  std::vector<std::vector<HierDriver::Record>> runs;
  for (unsigned threads : {2u, 4u, 8u}) {
    auto engine = Engine::make(EngineConfig{threads});
    HierRig rig(*engine);
    engine->run_for(kCycles);
    runs.push_back(rig.driver.outcomes);
  }
  ASSERT_GT(runs[0].size(), 10u);
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

}  // namespace
