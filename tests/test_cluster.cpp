// Tests for multi-cluster CFM with free-slot remote access (Fig 3.12).
#include <gtest/gtest.h>

#include "cfm/cluster.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::Cycle;
using cfm::sim::Word;

ClusterConfig small_config() {
  ClusterConfig cfg;
  cfg.local_processors = 3;
  cfg.total_slots = 4;
  cfg.bank_cycle = 1;
  cfg.link_latency = 4;
  return cfg;
}

void run(ClusterSystem& sys, Cycle& t, Cycle cycles) {
  for (Cycle i = 0; i < cycles; ++i) {
    sys.tick(t);
    for (std::uint32_t c = 0; c < sys.cluster_count(); ++c) {
      sys.memory(c).tick(t);
    }
    ++t;
  }
}

TEST(ClusterSystem, RequiresAFreeSlot) {
  ClusterConfig cfg = small_config();
  cfg.local_processors = 4;  // no free slot left
  EXPECT_THROW(ClusterSystem(2, cfg), std::invalid_argument);
}

TEST(ClusterSystem, RemoteReadRoundTrip) {
  ClusterSystem sys(2, small_config());
  const std::vector<Word> data{5, 6, 7, 8};
  sys.memory(1).poke_block(9, data);
  Cycle t = 0;
  const auto req = sys.remote_request(0, 0, 1, BlockOpKind::Read, 9);
  run(sys, t, 100);
  const auto* r = sys.result(req);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->data, data);
  // Latency = link + block access + link, plus port pickup jitter.
  const auto latency = r->completed - r->issued;
  EXPECT_GE(latency, 4u + 4u + 4u);
  EXPECT_LE(latency, 4u + 4u + 4u + 3u);
}

TEST(ClusterSystem, RemoteWriteLands) {
  ClusterSystem sys(2, small_config());
  Cycle t = 0;
  const std::vector<Word> data{1, 2, 3, 4};
  const auto req = sys.remote_request(0, 0, 1, BlockOpKind::Write, 7, data);
  run(sys, t, 100);
  ASSERT_NE(sys.result(req), nullptr);
  EXPECT_EQ(sys.memory(1).peek_block(7), data);
}

TEST(ClusterSystem, RemoteServiceDoesNotDisturbLocalAccesses) {
  // §3.3: "The service does not introduce network and memory contention
  // to cluster B, since it uses the free time slot."
  ClusterSystem sys(2, small_config());
  auto& memB = sys.memory(1);
  const auto beta = memB.config().block_access_time();
  Cycle t = 0;
  // Local processors of cluster B start block reads...
  std::vector<CfmMemory::OpToken> local;
  for (std::uint32_t p = 0; p < 3; ++p) {
    local.push_back(memB.issue(0, p, BlockOpKind::Read, 100 + p));
  }
  // ...while cluster A floods remote requests at B.
  for (int i = 0; i < 3; ++i) {
    (void)sys.remote_request(0, 0, 1, BlockOpKind::Read, 200 + i);
  }
  run(sys, t, 200);
  for (const auto op : local) {
    const auto r = memB.take_result(op);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->completed - r->issued, beta)
        << "local access disturbed by remote traffic";
  }
}

TEST(ClusterSystem, SameClusterRequestRejected) {
  ClusterSystem sys(2, small_config());
  EXPECT_THROW(sys.remote_request(0, 1, 1, BlockOpKind::Read, 1),
               std::invalid_argument);
}

TEST(ClusterSystem, ManyRemoteRequestsSerializeOnTheFreeSlot) {
  ClusterSystem sys(2, small_config());
  Cycle t = 0;
  std::vector<ClusterSystem::RequestId> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back(sys.remote_request(0, 0, 1, BlockOpKind::Read, 50 + i));
  }
  run(sys, t, 400);
  Cycle prev_done = 0;
  for (const auto id : reqs) {
    const auto r = sys.take_result(id);
    ASSERT_TRUE(r.has_value());
    EXPECT_GE(r->completed, prev_done);  // served in order on one port
    prev_done = r->completed;
  }
}

}  // namespace
