// Tests for the coded-redundancy memory backend: the code descriptor
// (stripe layout, rate arithmetic, tradeoff enumeration), CodedMemory's
// read/decode/write/parity paths under both parity policies, permanent
// decode of dead banks, the CodedRelaxed audit scope, the closed-loop
// CodedDriver, and the `coded` campaign workload family.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"
#include "mem/coded/code_descriptor.hpp"
#include "mem/coded/coded_memory.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "workload/coded_gen.hpp"

namespace {

using namespace cfm;
using mem::coded::CodeDescriptor;
using mem::coded::CodedConfig;
using mem::coded::CodedMemory;
using mem::coded::ParityPolicy;

CodedConfig small_config(std::uint32_t parity_per_stripe,
                         ParityPolicy policy) {
  CodedConfig cfg;
  cfg.processors = 4;
  cfg.bank_cycle = 1;
  cfg.code.data_banks = 8;
  cfg.code.stripe_width = 4;
  cfg.code.parity_per_stripe = parity_per_stripe;
  cfg.code.policy = policy;
  return cfg;
}

/// Issues a whole-block write and ticks until it completes.
void write_block(CodedMemory& memory, sim::Cycle& now, sim::ProcessorId p,
                 sim::BlockAddr block, const std::vector<sim::Word>& words) {
  const auto token =
      memory.issue(now, p, core::BlockOpKind::Write, block, words);
  for (int guard = 0; guard < 1000; ++guard) {
    memory.tick(now);
    ++now;
    if (auto result = memory.take_result(token)) {
      ASSERT_EQ(result->status, core::OpStatus::Completed);
      return;
    }
  }
  FAIL() << "write did not complete";
}

std::vector<sim::Word> read_block(CodedMemory& memory, sim::Cycle& now,
                                  sim::ProcessorId p, sim::BlockAddr block) {
  const auto token = memory.issue(now, p, core::BlockOpKind::Read, block);
  for (int guard = 0; guard < 1000; ++guard) {
    memory.tick(now);
    ++now;
    if (auto result = memory.take_result(token)) {
      EXPECT_EQ(result->status, core::OpStatus::Completed);
      return result->data;
    }
  }
  ADD_FAILURE() << "read did not complete";
  return {};
}

// ------------------------------------------------------- descriptor ----

TEST(CodeDescriptor, ValidatesShape) {
  CodeDescriptor d;
  d.data_banks = 8;
  d.stripe_width = 4;
  d.parity_per_stripe = 1;
  EXPECT_NO_THROW(d.validate());
  d.stripe_width = 3;  // does not divide 8
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.stripe_width = 4;
  d.parity_per_stripe = 5;  // r > k
  EXPECT_THROW(d.validate(), std::invalid_argument);
  d.parity_per_stripe = 0;  // uncoded is a valid anchor
  EXPECT_NO_THROW(d.validate());
}

TEST(CodeDescriptor, LayoutArithmetic) {
  CodeDescriptor d;
  d.data_banks = 8;
  d.stripe_width = 4;
  d.parity_per_stripe = 2;
  EXPECT_EQ(d.stripes(), 2u);
  EXPECT_EQ(d.parity_banks(), 4u);
  EXPECT_EQ(d.total_banks(), 12u);
  EXPECT_DOUBLE_EQ(d.code_rate(), 4.0 / 6.0);
  EXPECT_EQ(d.max_decode_fanout(), 2u);  // ceil(4/2)

  // Stripe 1 (words 4..7), r=2: word 6 sits in sub-group 0 with word 4;
  // its parity group is stripe*r + 0 = 2.
  EXPECT_EQ(d.group_of(6), 2u);
  EXPECT_EQ(d.group_peers(6), (std::vector<std::uint32_t>{4}));
  EXPECT_EQ(d.group_of(5), 3u);
  EXPECT_EQ(d.group_peers(5), (std::vector<std::uint32_t>{7}));
}

TEST(CodeDescriptor, FromRateDerivesParityCount) {
  const auto half = CodeDescriptor::from_rate(8, 4, 0.5, ParityPolicy::Logged);
  EXPECT_EQ(half.parity_per_stripe, 4u);  // mirror
  const auto four_fifths =
      CodeDescriptor::from_rate(8, 4, 0.8, ParityPolicy::ReadModifyWrite);
  EXPECT_EQ(four_fifths.parity_per_stripe, 1u);
  const auto uncoded =
      CodeDescriptor::from_rate(8, 4, 1.0, ParityPolicy::ReadModifyWrite);
  EXPECT_EQ(uncoded.parity_per_stripe, 0u);
  // 0.7 with k=4 needs r = 12/7: not realizable.
  EXPECT_THROW(CodeDescriptor::from_rate(8, 4, 0.7, ParityPolicy::Logged),
               std::invalid_argument);
  EXPECT_THROW(CodeDescriptor::from_rate(8, 4, 0.0, ParityPolicy::Logged),
               std::invalid_argument);
}

TEST(CodeDescriptor, EnumerateTradeoffsCoversBudget) {
  // B = 12, k = 4: r=0 fails (12 % 4 = 0 works: 3 stripes, 12 data), r=1
  // fails (12 % 5), r=2 gives 2 stripes (8+4), r=4 gives (4+4)... wait
  // 12 % 8 = 4.  The enumeration is the authority; check its invariants.
  const auto rows = mem::coded::enumerate_coded_tradeoffs(12, 4);
  ASSERT_FALSE(rows.empty());
  for (const auto& row : rows) {
    EXPECT_EQ(row.data_banks + row.parity_banks, 12u);
    EXPECT_EQ(row.data_banks % 4u, 0u);
    CodeDescriptor d;
    d.data_banks = row.data_banks;
    d.stripe_width = 4;
    d.parity_per_stripe = row.parity_per_stripe;
    EXPECT_NO_THROW(d.validate());
    EXPECT_DOUBLE_EQ(row.code_rate, d.code_rate());
  }
  EXPECT_THROW(mem::coded::parity_policy_from_name("raid6"),
               std::invalid_argument);
}

// ---------------------------------------------------- memory: basics ---

TEST(CodedMemory, WriteThenReadRoundTripsBothPolicies) {
  for (const auto policy :
       {ParityPolicy::ReadModifyWrite, ParityPolicy::Logged}) {
    CodedMemory memory(small_config(1, policy));
    sim::Cycle now = 0;
    const std::vector<sim::Word> words{10, 20, 30, 40, 50, 60, 70, 80};
    write_block(memory, now, 0, 42, words);
    EXPECT_EQ(read_block(memory, now, 0, 42), words);
    EXPECT_EQ(memory.counters().get("decode_mismatches"), 0u);
  }
}

TEST(CodedMemory, ParityMaintainedByWrites) {
  // After any mix of writes, every parity word must equal the XOR of its
  // group — checked through a decode with the data bank killed later, and
  // directly via poke/peek consistency.
  CodedMemory memory(small_config(2, ParityPolicy::ReadModifyWrite));
  sim::Cycle now = 0;
  write_block(memory, now, 3, 0, {1, 2, 3, 4, 5, 6, 7, 8});
  write_block(memory, now, 3, 0, {9, 9, 9, 9, 9, 9, 9, 9});
  EXPECT_EQ(read_block(memory, now, 3, 0),
            (std::vector<sim::Word>{9, 9, 9, 9, 9, 9, 9, 9}));
  EXPECT_GT(memory.counters().get("parity_updates"), 0u);
  EXPECT_EQ(memory.counters().get("decode_mismatches"), 0u);
}

TEST(CodedMemory, LoggedPolicyDrainsAndCoalesces) {
  // Two processors write the same block concurrently; with r=1 their
  // words share a parity group, so two deltas of one block land on the
  // log in the same cycle — the drain must apply them as one coalesced
  // parity write, and every logged delta must be conserved:
  // applied-as-head + coalesced == logged.
  CodedMemory memory(small_config(1, ParityPolicy::Logged));
  sim::Cycle now = 0;
  const std::vector<sim::Word> words{1, 1, 1, 1, 1, 1, 1, 1};
  const auto t0 = memory.issue(now, 0, core::BlockOpKind::Write, 5, words);
  const auto t1 = memory.issue(now, 1, core::BlockOpKind::Write, 5, words);
  for (int guard = 0; guard < 200 && (!memory.idle(0) || !memory.idle(1));
       ++guard) {
    memory.tick(now);
    ++now;
  }
  ASSERT_TRUE(memory.take_result(t0).has_value());
  ASSERT_TRUE(memory.take_result(t1).has_value());
  // The background drain must finish once the machine idles.
  for (int i = 0; i < 20; ++i) {
    memory.tick(now);
    ++now;
  }
  EXPECT_EQ(memory.pending_parity(), 0u);
  const auto logged = memory.counters().get("parity_deltas_logged");
  const auto coalesced = memory.counters().get("parity_deltas_coalesced");
  EXPECT_EQ(logged, 16u);  // both full-block writes went through the log
  EXPECT_GT(coalesced, 0u);
  EXPECT_EQ(memory.counters().get("parity_updates") + coalesced, logged);
  EXPECT_EQ(read_block(memory, now, 0, 5), words);
}

TEST(CodedMemory, RejectsBadOps) {
  CodedMemory memory(small_config(1, ParityPolicy::ReadModifyWrite));
  const std::vector<sim::Word> short_block{1, 2, 3};
  EXPECT_THROW(
      memory.issue(0, 0, core::BlockOpKind::Write, 1, short_block),
      std::invalid_argument);
  EXPECT_THROW(memory.issue(0, 0, core::BlockOpKind::Swap, 1),
               std::invalid_argument);
  CodedConfig bad = small_config(1, ParityPolicy::ReadModifyWrite);
  bad.code.stripe_width = 3;
  EXPECT_THROW(CodedMemory{bad}, std::invalid_argument);
}

// ------------------------------------------------ memory: contention ---

TEST(CodedMemory, BusyBankServedByDecode) {
  // bank_cycle 4 with 8 data banks: processors 0 and 2 get the same
  // de-phased start word (0*4 and 2*4 mod 8), so both want bank 0 in the
  // same slot.  Processor 0 (stepped first) claims it directly; processor
  // 2 finds it busy and — with the rest of the stripe idle — must be
  // served by decode, not stall.
  CodedConfig cfg = small_config(1, ParityPolicy::ReadModifyWrite);
  cfg.bank_cycle = 4;
  CodedMemory memory(cfg);
  sim::Cycle now = 0;
  write_block(memory, now, 0, 3, {1, 2, 3, 4, 5, 6, 7, 8});

  const auto t0 = memory.issue(now, 0, core::BlockOpKind::Read, 3);
  const auto t1 = memory.issue(now, 2, core::BlockOpKind::Read, 3);
  for (int guard = 0; guard < 200 && (!memory.idle(0) || !memory.idle(2));
       ++guard) {
    memory.tick(now);
    ++now;
  }
  const auto r0 = memory.take_result(t0);
  const auto r1 = memory.take_result(t1);
  ASSERT_TRUE(r0.has_value());
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r0->data, (std::vector<sim::Word>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_EQ(r1->data, (std::vector<sim::Word>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_GT(memory.counters().get("word_reads_decoded"), 0u);
  EXPECT_EQ(memory.counters().get("decode_mismatches"), 0u);
}

// --------------------------------------------------- memory: faults ----

TEST(CodedMemory, DeadBankAbsorbedByPermanentDecode) {
  for (const auto policy :
       {ParityPolicy::ReadModifyWrite, ParityPolicy::Logged}) {
    CodedMemory memory(small_config(1, policy));
    sim::FaultInjector injector(
        sim::FaultPlan::parse("bank_dead@10:module=0,bank=2"));
    memory.set_fault_injector(injector);
    sim::Cycle now = 0;
    write_block(memory, now, 0, 9, {1, 2, 3, 4, 5, 6, 7, 8});
    while (now < 20) {
      memory.tick(now);
      ++now;
    }
    EXPECT_EQ(memory.live_banks(), memory.descriptor().total_banks() - 1);
    // Reads decode the dead bank's word forever; writes fold through
    // parity.  Both must keep returning correct data.
    EXPECT_EQ(read_block(memory, now, 0, 9),
              (std::vector<sim::Word>{1, 2, 3, 4, 5, 6, 7, 8}));
    write_block(memory, now, 1, 9, {11, 12, 13, 14, 15, 16, 17, 18});
    EXPECT_EQ(read_block(memory, now, 2, 9),
              (std::vector<sim::Word>{11, 12, 13, 14, 15, 16, 17, 18}));
    EXPECT_GT(memory.counters().get("word_reads_decoded"), 0u);
    EXPECT_GT(memory.counters().get("word_writes_decoded"), 0u);
    EXPECT_EQ(memory.counters().get("decode_mismatches"), 0u);
    EXPECT_EQ(memory.counters().get("fault_aborts"), 0u);
  }
}

TEST(CodedMemory, DeadParityDegradesToUncoded) {
  CodedMemory memory(small_config(1, ParityPolicy::ReadModifyWrite));
  // Parity banks sit above the 8 data banks: bank 8 is stripe 0's parity.
  sim::FaultInjector injector(
      sim::FaultPlan::parse("bank_dead@0:module=0,bank=8"));
  memory.set_fault_injector(injector);
  sim::Cycle now = 0;
  memory.tick(now);
  ++now;
  write_block(memory, now, 0, 4, {1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(read_block(memory, now, 0, 4),
            (std::vector<sim::Word>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_GT(memory.counters().get("parity_skipped"), 0u);
}

TEST(CodedMemory, DoubleDeathAbortsBoundedly) {
  // Kill a data bank AND its stripe's parity bank: words of that bank are
  // structurally unserviceable, so ops must abort within the timeout
  // instead of hanging.
  CodedMemory memory(small_config(1, ParityPolicy::ReadModifyWrite));
  sim::FaultInjector injector(sim::FaultPlan::parse(
      "bank_dead@0:module=0,bank=2;bank_dead@0:module=0,bank=8"));
  memory.set_fault_injector(injector);
  sim::Cycle now = 0;
  const auto token = memory.issue(now, 0, core::BlockOpKind::Read, 1);
  std::optional<core::BlockOpResult> result;
  for (int guard = 0; guard < 2000 && !result; ++guard) {
    memory.tick(now);
    ++now;
    result = memory.take_result(token);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, core::OpStatus::Aborted);
  EXPECT_GT(memory.counters().get("fault_aborts"), 0u);
  EXPECT_GT(memory.counters().get("bank_failures_unmapped"), 0u);
}

TEST(CodedMemory, UncodedStripeCannotAbsorbDeath) {
  CodedMemory memory(small_config(0, ParityPolicy::ReadModifyWrite));
  sim::FaultInjector injector(
      sim::FaultPlan::parse("bank_dead@0:module=0,bank=0"));
  memory.set_fault_injector(injector);
  sim::Cycle now = 0;
  const auto token = memory.issue(now, 0, core::BlockOpKind::Read, 1);
  std::optional<core::BlockOpResult> result;
  for (int guard = 0; guard < 2000 && !result; ++guard) {
    memory.tick(now);
    ++now;
    result = memory.take_result(token);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->status, core::OpStatus::Aborted);
}

// ---------------------------------------------------------- auditor ----

TEST(CodedMemory, CodedRelaxedScopeStaysGreenUnderFaults) {
  sim::ConflictAuditor auditor;
  CodedMemory memory(small_config(1, ParityPolicy::ReadModifyWrite));
  memory.set_audit(auditor);
  sim::FaultInjector injector(
      sim::FaultPlan::parse("bank_dead@5:module=0,bank=1"));
  memory.set_fault_injector(injector);
  sim::Cycle now = 0;
  write_block(memory, now, 0, 2, {1, 2, 3, 4, 5, 6, 7, 8});
  while (now < 10) {
    memory.tick(now);
    ++now;
  }
  EXPECT_EQ(read_block(memory, now, 0, 2),
            (std::vector<sim::Word>{1, 2, 3, 4, 5, 6, 7, 8}));
  EXPECT_GT(memory.counters().get("word_reads_decoded"), 0u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GT(auditor.checks_performed(), 0u);
  EXPECT_GT(auditor.injected_detected(), 0u);
}

TEST(ConflictAuditor, CodedRelaxedProbesDetectBreaks) {
  // Direct probe sensitivity: the scope must actually bite, not just
  // stay green by never checking anything.
  sim::ConflictAuditor auditor;
  const auto scope =
      auditor.add_scope("probe", sim::AuditScopeKind::CodedRelaxed,
                        /*banks=*/12, /*bank_cycle=*/1, /*beta=*/0,
                        /*fanout_limit=*/4);
  auditor.on_decode(scope, 1, 4);       // at the bound: fine
  auditor.on_parity_guard(scope, 1, 0);  // drained: fine
  EXPECT_EQ(auditor.violations(), 0u);
  auditor.on_decode(scope, 2, 5);  // fan-out above stripe width
  EXPECT_EQ(auditor.violations(), 1u);
  auditor.on_parity_guard(scope, 2, 3);  // decode through torn parity
  EXPECT_EQ(auditor.violations(), 2u);
  // Bank overlap is a violation under CodedRelaxed too.
  auditor.on_bank_access(scope, 10, 7);
  auditor.on_bank_access(scope, 10, 7);
  EXPECT_EQ(auditor.violations(), 3u);
}

// ----------------------------------------------------------- driver ----

TEST(CodedDriver, ClosedLoopCleanRunCompletes) {
  CodedConfig cfg = small_config(1, ParityPolicy::ReadModifyWrite);
  sim::ConflictAuditor auditor;
  workload::CodedRunHooks hooks;
  hooks.auditor = &auditor;
  sim::CounterSet counters;
  hooks.counters_out = &counters;
  const auto r = workload::measure_coded_instrumented(
      cfg, /*rate=*/0.3, /*write_fraction=*/0.3, /*cycles=*/4000,
      /*seed=*/7, hooks);
  EXPECT_GT(r.completed, 100u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_EQ(counters.get("decode_mismatches"), 0u);
  EXPECT_GE(r.mean_access_time,
            static_cast<double>(cfg.block_access_time()));
}

TEST(CodedDriver, FaultedRunServesEverythingByDecode) {
  // The acceptance scenario in miniature: mid-run bank death, zero failed
  // accesses, auditor green, decodes observed.
  CodedConfig cfg = small_config(1, ParityPolicy::ReadModifyWrite);
  sim::ConflictAuditor auditor;
  sim::FaultInjector injector(
      sim::FaultPlan::parse("bank_dead@2000:module=0,bank=3"));
  workload::CodedRunHooks hooks;
  hooks.auditor = &auditor;
  hooks.injector = &injector;
  sim::CounterSet counters;
  std::uint32_t fanout_max = 0;
  hooks.counters_out = &counters;
  hooks.decode_fanout_max_out = &fanout_max;
  const auto r = workload::measure_coded_instrumented(
      cfg, /*rate=*/0.3, /*write_fraction=*/0.25, /*cycles=*/6000,
      /*seed=*/11, hooks);
  EXPECT_GT(r.completed, 100u);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_EQ(counters.get("bank_failures"), 1u);
  EXPECT_GT(counters.get("word_reads_decoded") +
                counters.get("word_writes_decoded"),
            0u);
  EXPECT_EQ(counters.get("decode_mismatches"), 0u);
  EXPECT_GT(fanout_max, 0u);
  EXPECT_LE(fanout_max, cfg.code.stripe_width);
}

TEST(CodedDriver, DeterministicAcrossRuns) {
  CodedConfig cfg = small_config(2, ParityPolicy::Logged);
  const auto run = [&] {
    sim::CounterSet counters;
    workload::CodedRunHooks hooks;
    hooks.counters_out = &counters;
    const auto r = workload::measure_coded_instrumented(
        cfg, 0.4, 0.3, 3000, 99, hooks);
    return std::make_pair(r.completed, counters.get("parity_updates"));
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
}

// --------------------------------------------------------- campaign ----

TEST(CodedCampaign, ScenarioParsesExpandsAndValidates) {
  const char* text = R"({
    "name": "coded_grid",
    "workload": "coded",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500,
               "data_banks": 8, "stripe_width": 4,
               "write_fraction": 0.25},
    "sweep": {"code_rate": [0.5, 0.8], "parity_policy": ["rmw", "logged"],
              "seed": [1, 2]},
    "audit": true,
    "fault_plan": "bank_dead@200:module=0,bank=3"
  })";
  const auto scenario = campaign::Scenario::parse_text(text);
  EXPECT_EQ(scenario.workload(), campaign::WorkloadKind::Coded);
  const auto points = scenario.expand();
  EXPECT_EQ(points.size(), 8u);

  // Unrealizable code_rate for the stripe width fails the expand.
  EXPECT_THROW(campaign::Scenario::parse_text(R"({
    "name": "bad", "workload": "coded",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500,
               "data_banks": 8, "stripe_width": 4, "code_rate": 0.7,
               "parity_policy": "rmw"}})")
                   .expand(),
               std::invalid_argument);
  // parity_policy must be a known name...
  EXPECT_THROW(campaign::Scenario::parse_text(R"({
    "name": "bad", "workload": "coded",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500,
               "data_banks": 8, "stripe_width": 4, "code_rate": 0.8,
               "parity_policy": "raid6"}})")
                   .expand(),
               std::invalid_argument);
  // ...and a string one at that (strings only on the coded workload).
  EXPECT_THROW(campaign::Scenario::parse_text(R"({
    "name": "bad", "workload": "cfm",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500,
               "parity_policy": "rmw"}})"),
               std::invalid_argument);
}

TEST(CodedCampaign, FaultPlanBankBoundsCheckedAtExpand) {
  // 8 data + 2 parity banks = banks [0, 10): bank 10 never exists.
  EXPECT_THROW(campaign::Scenario::parse_text(R"({
    "name": "bad", "workload": "coded",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500,
               "data_banks": 8, "stripe_width": 4, "code_rate": 0.8,
               "parity_policy": "rmw"},
    "fault_plan": "bank_dead@100:module=0,bank=10"})")
                   .expand(),
               std::invalid_argument);
  // The CFM side of the same seam: b = c*n = 4 banks, bank 7 is inert.
  EXPECT_THROW(campaign::Scenario::parse_text(R"({
    "name": "bad", "workload": "cfm",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500},
    "fault_plan": "bank_dead@100:module=0,bank=7"})")
                   .expand(),
               std::invalid_argument);
  // In-range plans still pass on both workloads.
  EXPECT_NO_THROW(campaign::Scenario::parse_text(R"({
    "name": "ok", "workload": "cfm",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 500},
    "fault_plan": "bank_dead@100:module=0,bank=3"})")
                      .expand());
}

TEST(CodedCampaign, RunPointProducesCodedMetrics) {
  const auto scenario = campaign::Scenario::parse_text(R"({
    "name": "one", "workload": "coded",
    "params": {"n": 4, "c": 1, "rate": 0.3, "cycles": 3000,
               "data_banks": 8, "stripe_width": 4, "code_rate": 0.8,
               "parity_policy": "rmw", "write_fraction": 0.25},
    "audit": true,
    "fault_plan": "bank_dead@1000:module=0,bank=2"
  })");
  const auto points = scenario.expand();
  ASSERT_EQ(points.size(), 1u);
  const auto out = campaign::run_point(points[0]);
  const auto& metrics = out.at("metrics");
  EXPECT_GT(metrics.at("completed").as_uint(), 0u);
  EXPECT_EQ(metrics.at("failed").as_uint(), 0u);
  const double decode_rate = metrics.at("decode_rate").as_double();
  EXPECT_GT(decode_rate, 0.0);
  EXPECT_LE(decode_rate, 1.0);
  EXPECT_GE(metrics.at("parity_amplification").as_double(), 0.0);
  EXPECT_LE(metrics.at("decode_fanout_max").as_uint(), 4u);
  EXPECT_EQ(metrics.at("banks_provisioned").as_uint(), 10u);
  EXPECT_EQ(metrics.at("banks_required_cfm").as_uint(), 4u);
  EXPECT_EQ(out.at("audit").at("violations").as_uint(), 0u);
  ASSERT_TRUE(out.at("counters").contains("decode_mismatches"));
  EXPECT_EQ(out.at("counters").at("decode_mismatches").as_uint(), 0u);
}

}  // namespace
