// Tests for inter-cluster topologies (§3.3) and their effect on remote
// access latency.
#include <gtest/gtest.h>

#include "cfm/cluster.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::Cycle;

TEST(ClusterHops, FullyConnected) {
  EXPECT_EQ(cluster_hops(ClusterTopology::FullyConnected, 8, 3, 3), 0u);
  EXPECT_EQ(cluster_hops(ClusterTopology::FullyConnected, 8, 0, 7), 1u);
}

TEST(ClusterHops, RingWrapsBothWays) {
  EXPECT_EQ(cluster_hops(ClusterTopology::Ring, 8, 0, 1), 1u);
  EXPECT_EQ(cluster_hops(ClusterTopology::Ring, 8, 0, 4), 4u);
  EXPECT_EQ(cluster_hops(ClusterTopology::Ring, 8, 0, 7), 1u);  // wrap
  EXPECT_EQ(cluster_hops(ClusterTopology::Ring, 8, 2, 6), 4u);
  EXPECT_EQ(cluster_hops(ClusterTopology::Ring, 8, 6, 2), 4u);  // symmetric
}

TEST(ClusterHops, Mesh2DManhattan) {
  // 3x3 mesh: cluster = row*3 + col.
  EXPECT_EQ(cluster_hops(ClusterTopology::Mesh2D, 9, 0, 8), 4u);  // (0,0)->(2,2)
  EXPECT_EQ(cluster_hops(ClusterTopology::Mesh2D, 9, 4, 4), 0u);
  EXPECT_EQ(cluster_hops(ClusterTopology::Mesh2D, 9, 1, 7), 2u);  // (0,1)->(2,1)
  EXPECT_THROW((void)cluster_hops(ClusterTopology::Mesh2D, 8, 0, 1),
               std::invalid_argument);
}

TEST(ClusterHops, HypercubeHamming) {
  EXPECT_EQ(cluster_hops(ClusterTopology::Hypercube, 8, 0b000, 0b111), 3u);
  EXPECT_EQ(cluster_hops(ClusterTopology::Hypercube, 8, 0b010, 0b011), 1u);
  EXPECT_THROW((void)cluster_hops(ClusterTopology::Hypercube, 6, 0, 1),
               std::invalid_argument);
}

TEST(ClusterHops, TriangleInequalityOnRing) {
  for (std::uint32_t a = 0; a < 8; ++a) {
    for (std::uint32_t b = 0; b < 8; ++b) {
      for (std::uint32_t c = 0; c < 8; ++c) {
        EXPECT_LE(cluster_hops(ClusterTopology::Ring, 8, a, c),
                  cluster_hops(ClusterTopology::Ring, 8, a, b) +
                      cluster_hops(ClusterTopology::Ring, 8, b, c));
      }
    }
  }
}

TEST(ClusterSystemTopology, RemoteLatencyScalesWithHops) {
  ClusterConfig cfg;
  cfg.local_processors = 3;
  cfg.total_slots = 4;
  cfg.link_latency = 5;
  cfg.topology = ClusterTopology::Ring;
  ClusterSystem sys(8, cfg);

  auto run_request = [&](cfm::sim::ClusterId dst) {
    Cycle t = 0;
    const auto id = sys.remote_request(0, 0, dst, BlockOpKind::Read, 7);
    for (int i = 0; i < 500; ++i) {
      sys.tick(t);
      for (std::uint32_t c = 0; c < sys.cluster_count(); ++c) {
        sys.memory(c).tick(t);
      }
      ++t;
      if (const auto* r = sys.result(id)) return r->completed - r->issued;
    }
    ADD_FAILURE() << "remote request timed out";
    return Cycle{0};
  };

  const auto near = run_request(1);  // 1 hop
  const auto far = run_request(4);   // 4 hops on the 8-ring
  EXPECT_GT(far, near);
  // Each extra hop costs 2 * link_latency (request + reply).
  EXPECT_EQ(far - near, 2u * 3u * cfg.link_latency);
}

}  // namespace
