// Campaign subsystem: scenario DSL validation, grid expansion, the
// content-addressed result cache, and end-to-end run_campaign behaviour
// (cache-hit determinism, kill/resume, audit rollup exit codes).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace fs = std::filesystem;
using namespace cfm;
using namespace cfm::campaign;

namespace {

/// Unique scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("cfm_campaign_test_" + tag + "_" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

Scenario small_grid() {
  return Scenario::parse_text(R"({
    "name": "grid",
    "workload": "cfm",
    "audit": true,
    "params": { "rate": 0.3, "cycles": 300 },
    "sweep": { "n": [2, 4], "c": [1, 2] },
    "base_seed": 7 })");
}

}  // namespace

// ---------------------------------------------------------------------------
// Scenario DSL: negative cases.

TEST(Scenario, UnknownTopLevelKeyThrows) {
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "n": 2, "c": 1, "rate": 0.1, "cycles": 10 },
               "bogus": 1 })"),
      std::invalid_argument);
}

TEST(Scenario, UnknownWorkloadParamThrows) {
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "n": 2, "c": 1, "rate": 0.1, "cycles": 10,
                           "warp_drive": 9 } })"),
      std::invalid_argument);
}

TEST(Scenario, MissingRequiredParamThrows) {
  EXPECT_THROW(Scenario::parse_text(
                   R"({ "name": "x", "workload": "cfm",
                        "params": { "n": 2, "c": 1, "rate": 0.1 } })"),
               std::invalid_argument);
}

TEST(Scenario, BadAxisTypeThrows) {
  // Axis must be an array...
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "c": 1, "rate": 0.1, "cycles": 10 },
               "sweep": { "n": 4 } })"),
      std::invalid_argument);
  // ...of scalars.
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "c": 1, "rate": 0.1, "cycles": 10 },
               "sweep": { "n": [[2]] } })"),
      std::invalid_argument);
  // ...and non-empty.
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "c": 1, "rate": 0.1, "cycles": 10 },
               "sweep": { "n": [] } })"),
      std::invalid_argument);
}

TEST(Scenario, DuplicateAxisThrows) {
  // "n" both fixed and swept.
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "n": 2, "c": 1, "rate": 0.1, "cycles": 10 },
               "sweep": { "n": [2, 4] } })"),
      std::invalid_argument);
}

TEST(Scenario, NonConflictFreePointThrows) {
  // b = 5 with c*n = 4: breaks the paper's b = c*n constraint.
  const auto s = Scenario::parse_text(
      R"({ "name": "x", "workload": "cfm",
           "params": { "n": 4, "c": 1, "b": 5, "rate": 0.1,
                       "cycles": 10 } })");
  try {
    (void)s.expand();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("conflict"), std::string::npos)
        << e.what();
  }
}

TEST(Scenario, UnknownWorkloadNameThrows) {
  EXPECT_THROW((void)workload_from_name("quantum"), std::invalid_argument);
}

TEST(Scenario, BadFaultPlanRejectedAtParseTime) {
  EXPECT_THROW(
      Scenario::parse_text(
          R"({ "name": "x", "workload": "cfm",
               "params": { "n": 2, "c": 1, "rate": 0.1, "cycles": 10 },
               "fault_plan": "no_such_fault@7" })"),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Expansion semantics.

TEST(Scenario, ExpansionIsSortedAxesLastFastest) {
  const auto s = small_grid();
  EXPECT_EQ(s.grid_size(), 4u);
  const auto points = s.expand();
  ASSERT_EQ(points.size(), 4u);
  // Axes sorted (c before n); n (the last axis) varies fastest.
  EXPECT_EQ(points[0].param_u64("c"), 1u);
  EXPECT_EQ(points[0].param_u64("n"), 2u);
  EXPECT_EQ(points[1].param_u64("c"), 1u);
  EXPECT_EQ(points[1].param_u64("n"), 4u);
  EXPECT_EQ(points[2].param_u64("c"), 2u);
  EXPECT_EQ(points[2].param_u64("n"), 2u);
}

TEST(Scenario, PointSeedsStableUnderGridEdits) {
  const auto before = small_grid().expand();
  // Append an axis value: existing points must keep their seeds and keys.
  const auto after = Scenario::parse_text(R"({
    "name": "grid",
    "workload": "cfm",
    "audit": true,
    "params": { "rate": 0.3, "cycles": 300 },
    "sweep": { "n": [2, 4, 8], "c": [1, 2] },
    "base_seed": 7 })")
                         .expand();
  ASSERT_EQ(after.size(), 6u);
  for (const auto& p : before) {
    bool found = false;
    for (const auto& q : after) {
      if (q.cache_key() == p.cache_key()) {
        EXPECT_EQ(q.rng_seed(), p.rng_seed());
        found = true;
      }
    }
    EXPECT_TRUE(found) << p.cache_key();
  }
}

TEST(Scenario, CanonicalRoundTripsThroughParse) {
  const auto s = small_grid();
  const auto reparsed = Scenario::parse(s.to_json());
  EXPECT_EQ(reparsed.to_json().dump(), s.to_json().dump());
}

// ---------------------------------------------------------------------------
// Result cache.

TEST(ResultCache, MissThenHitRoundTrip) {
  ScratchDir dir("cache");
  ResultCache cache((dir.path / "c").string());
  const auto point = small_grid().expand().front();
  EXPECT_FALSE(cache.load(point).has_value());
  auto result = sim::Json::object();
  result["metrics"] = sim::Json::object();
  result["metrics"]["efficiency"] = 0.5;
  cache.store(point, result);
  const auto back = cache.load(point);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), result.dump());
}

TEST(ResultCache, CorruptEntryIsAMiss) {
  ScratchDir dir("corrupt");
  ResultCache cache((dir.path / "c").string());
  const auto point = small_grid().expand().front();
  auto result = sim::Json::object();
  result["metrics"] = sim::Json::object();
  cache.store(point, result);
  // Truncate the entry (a killed campaign's torn write is prevented by
  // the tmp+rename protocol, but a damaged disk file must still miss).
  std::ofstream(cache.path_for(point), std::ios::trunc) << "{ \"key\": 1";
  EXPECT_FALSE(cache.load(point).has_value());
}

TEST(ResultCache, ConcurrentStoresOfSameKeyLandSafely) {
  // Sharded sweeps point several campaign *processes* at one cache
  // directory, so temp names carry the pid as well as the thread id (two
  // processes can hash their main-thread ids identically).  In-process we
  // can only exercise the thread half directly, but the invariant under
  // test is the same: many writers racing the identical key must leave
  // one valid entry and zero orphaned temp files.
  ScratchDir dir("race");
  const auto cache_dir = (dir.path / "c").string();
  const auto point = small_grid().expand().front();
  auto result = sim::Json::object();
  result["metrics"] = sim::Json::object();
  result["metrics"]["efficiency"] = 0.75;

  ResultCache a(cache_dir);
  ResultCache b(cache_dir);
  std::thread ta([&] { for (int i = 0; i < 50; ++i) a.store(point, result); });
  std::thread tb([&] { for (int i = 0; i < 50; ++i) b.store(point, result); });
  ta.join();
  tb.join();

  const auto back = a.load(point);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(), result.dump());
  std::size_t leftovers = 0;
  for (const auto& entry : fs::directory_iterator(dir.path / "c")) {
    if (entry.path().filename().string().find(".tmp.") != std::string::npos) {
      ++leftovers;
    }
  }
  EXPECT_EQ(leftovers, 0u);
}

TEST(ResultCache, DisabledCacheNeverStores) {
  ResultCache cache("");
  const auto point = small_grid().expand().front();
  cache.store(point, sim::Json::object());
  EXPECT_FALSE(cache.load(point).has_value());
}

// ---------------------------------------------------------------------------
// End-to-end campaigns.

TEST(Campaign, SecondRunIsFullyCachedAndByteIdentical) {
  ScratchDir dir("rerun");
  CampaignOptions options;
  options.cache_dir = (dir.path / "cache").string();
  options.jobs = 2;
  const auto s = small_grid();
  const auto first = run_campaign(s, options);
  EXPECT_EQ(first.points, 4u);
  EXPECT_EQ(first.executed, 4u);
  EXPECT_EQ(first.cached, 0u);
  EXPECT_EQ(first.failed, 0u);
  EXPECT_EQ(first.exit_code(), 0);

  const auto second = run_campaign(s, options);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.cached, 4u);
  EXPECT_EQ(second.report.dump(), first.report.dump());
}

TEST(Campaign, KillResumeReExecutesOnlyMissingPoints) {
  ScratchDir dir("resume");
  CampaignOptions options;
  options.cache_dir = (dir.path / "cache").string();
  options.jobs = 2;
  const auto s = small_grid();
  const auto first = run_campaign(s, options);

  // Simulate a campaign killed mid-flight: delete one cache entry and
  // corrupt another (as if the process died between store()s — the
  // tmp+rename protocol guarantees no torn entry, so "partial" means
  // some entries simply absent).
  const auto points = s.expand();
  ResultCache cache(options.cache_dir);
  ASSERT_TRUE(fs::remove(cache.path_for(points[1])));
  std::ofstream(cache.path_for(points[2]), std::ios::trunc) << "garbage";

  const auto resumed = run_campaign(s, options);
  EXPECT_EQ(resumed.executed, 2u);
  EXPECT_EQ(resumed.cached, 2u);
  EXPECT_EQ(resumed.report.dump(), first.report.dump())
      << "resume must reproduce the interrupted campaign's report";
}

TEST(Campaign, NoAxesRunsSinglePoint) {
  CampaignOptions options;
  options.cache_dir.clear();
  const auto s = Scenario::parse_text(
      R"({ "name": "one", "workload": "tradeoff",
           "params": { "block_bits": 64, "b": 8, "c": 2 } })");
  const auto result = run_campaign(s, options);
  EXPECT_EQ(result.points, 1u);
  EXPECT_EQ(result.report.at("points").as_array().size(), 1u);
  const auto& m = result.report.at("points").as_array()[0].at("metrics");
  EXPECT_EQ(m.at("processors").as_uint(), 4u);
  EXPECT_EQ(m.at("memory_latency").as_uint(), 9u);
}

TEST(Campaign, ReportCarriesMergedCountersStatsAndTables) {
  CampaignOptions options;
  options.cache_dir.clear();
  const auto result = run_campaign(small_grid(), options);
  const auto& report = result.report;
  EXPECT_EQ(report.at("schema").as_string(), "cfm-campaign-report/v1");
  EXPECT_EQ(report.at("name").as_string(), "grid");
  EXPECT_EQ(report.at("spec_hash").as_string().size(), 16u);
  // Audited cfm points carry machine counters; the rollup merges them.
  EXPECT_FALSE(report.at("counters").as_object().empty());
  EXPECT_TRUE(report.at("stats").as_object().count("access_time"));
  // One per-axis table per axis, one row per axis value.
  const auto& tables = report.at("tables");
  ASSERT_TRUE(tables.as_object().count("by_n"));
  ASSERT_TRUE(tables.as_object().count("by_c"));
  EXPECT_EQ(tables.at("by_n").as_array().size(), 2u);
  const auto& row = tables.at("by_n").as_array()[0];
  EXPECT_EQ(row.at("points").as_uint(), 2u);
  EXPECT_TRUE(row.as_object().count("efficiency"));
  // Conflict-free machine under an auditor: zero violations, real checks.
  EXPECT_EQ(report.at("audit").at("violations").as_uint(), 0u);
  EXPECT_GT(report.at("audit").at("checks").as_uint(), 0u);
  EXPECT_EQ(result.audit_violations, 0u);
}

TEST(Campaign, RunPointCoversEveryWorkloadKind) {
  // Each workload family must produce metrics through the same runner
  // the sharded executor uses.
  const struct {
    const char* text;
    const char* metric;
  } cases[] = {
      {R"({ "name": "w", "workload": "cfm",
            "params": { "n": 2, "c": 1, "rate": 0.2, "cycles": 200 } })",
       "efficiency"},
      {R"({ "name": "w", "workload": "conventional",
            "params": { "n": 2, "m": 2, "beta": 4, "rate": 0.2,
                        "cycles": 200 } })",
       "efficiency"},
      {R"({ "name": "w", "workload": "partial_cfm",
            "params": { "n": 2, "m": 2, "beta": 4, "rate": 0.2,
                        "locality": 0.5, "cycles": 200 } })",
       "efficiency"},
      {R"({ "name": "w", "workload": "trace_replay",
            "params": { "n": 2, "c": 1, "blocks": 8, "accesses": 64,
                        "span": 4, "write_fraction": 0.25 } })",
       "mean_latency"},
      {R"({ "name": "w", "workload": "lock",
            "params": { "variant": "cfm", "contenders": 2, "hold": 3,
                        "cycles": 300 } })",
       "total_acquisitions"},
      {R"({ "name": "w", "workload": "tradeoff",
            "params": { "block_bits": 64, "b": 8, "c": 2 } })",
       "processors"},
  };
  for (const auto& c : cases) {
    const auto points = Scenario::parse_text(c.text).expand();
    ASSERT_EQ(points.size(), 1u);
    const auto result = run_point(points.front());
    EXPECT_TRUE(result.at("metrics").as_object().count(c.metric))
        << c.text << " missing metric " << c.metric;
  }
}

TEST(Campaign, DeterministicAcrossJobCounts) {
  // Sharding must not leak into the report: 1 job and 4 jobs agree.
  CampaignOptions serial;
  serial.cache_dir.clear();
  serial.jobs = 1;
  CampaignOptions wide = serial;
  wide.jobs = 4;
  const auto s = small_grid();
  EXPECT_EQ(run_campaign(s, serial).report.dump(),
            run_campaign(s, wide).report.dump());
}
