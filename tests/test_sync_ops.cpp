// Tests for synchronization operations (§5.3): modify functions, the
// Fig 5.5 atomic multiple lock/unlock scenario, lock transfer cost
// (Fig 5.4), and the busy-lock client on the CFM protocol.
#include <gtest/gtest.h>

#include "cache/cfm_protocol.hpp"
#include "cache/sync_ops.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;
using cfm::sim::Word;

TEST(ModifyFns, SwapWord) {
  const auto fn = make_swap_word(1, 42);
  EXPECT_EQ(fn({1, 2, 3}), (std::vector<Word>{1, 42, 3}));
}

TEST(ModifyFns, TestAndSet) {
  const auto fn = make_test_and_set(0);
  EXPECT_EQ(fn({0, 9}), (std::vector<Word>{1, 9}));
  EXPECT_EQ(fn({1, 9}), (std::vector<Word>{1, 9}));
}

TEST(ModifyFns, FetchAndAdd) {
  const auto fn = make_fetch_and_add(2, 5);
  EXPECT_EQ(fn({0, 0, 10}), (std::vector<Word>{0, 0, 15}));
}

TEST(ModifyFns, MultipleTestAndSetFig55) {
  // Fig 5.5: target 01010110, first request 10100001 succeeds and yields
  // 11110111; second request fails (overlap) and leaves it unchanged;
  // unlock clears the first request's bits.
  const std::vector<Word> target{0b01010110};
  const std::vector<Word> req1{0b10100001};
  const std::vector<Word> req2{0b00101000};  // overlaps bit 5 of 11110111

  const auto lock1 = make_multiple_test_and_set(req1);
  const auto after1 = lock1(target);
  EXPECT_EQ(after1[0], 0b11110111u);
  EXPECT_TRUE(multiple_lock_succeeded(target, req1));

  const auto lock2 = make_multiple_test_and_set(req2);
  const auto after2 = lock2(after1);
  EXPECT_EQ(after2[0], after1[0]) << "failed lock must not modify";
  EXPECT_FALSE(multiple_lock_succeeded(after1, req2));

  const auto unlock1 = make_multiple_unlock(req1);
  EXPECT_EQ(unlock1(after1)[0], 0b01010110u);
}

TEST(ModifyFns, MultipleTasAllOrNothingAcrossWords) {
  const std::vector<Word> pattern{0b1, 0b10};
  const auto fn = make_multiple_test_and_set(pattern);
  // Second word conflicts -> nothing set, including the free first word.
  const std::vector<Word> held{0, 0b10};
  EXPECT_EQ(fn(held), held);
  // Both free -> both set.
  EXPECT_EQ(fn({0, 0}), (std::vector<Word>{0b1, 0b10}));
}

CfmCacheSystem::Params params4() {
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(4);
  return p;
}

TEST(CachedLock, SingleAcquire) {
  CfmCacheSystem sys(params4());
  CachedLockClient c(0, 7);
  c.acquire();
  Cycle t = 0;
  while (!c.holding() && t < 200) {
    c.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  EXPECT_TRUE(c.holding());
}

TEST(CachedLock, MutualExclusionUnderContention) {
  CfmCacheSystem sys(params4());
  std::vector<CachedLockClient> clients;
  for (std::uint32_t p = 0; p < 4; ++p) clients.emplace_back(p, 7);
  for (auto& c : clients) c.acquire();
  std::uint64_t acq = 0;
  for (Cycle t = 0; t < 6000; ++t) {
    int holders = 0;
    for (auto& c : clients) {
      if (c.holding()) {
        ++holders;
        ++acq;
        c.release();
      }
    }
    ASSERT_LE(holders, 1);
    for (auto& c : clients) {
      c.tick(t, sys);
      if (c.state() == CachedLockClient::State::Idle) c.acquire();
    }
    sys.tick(t);
  }
  EXPECT_GT(acq, 50u);
  for (auto& c : clients) EXPECT_GT(c.acquisitions(), 0u);
}

TEST(CachedLock, WaitersSpinLocallyNotInMemory) {
  // Fig 5.4's key point: waiting processors read-loop on their LOCAL
  // cached copy; while the lock is held and stable, they generate no
  // protocol operations at all.
  CfmCacheSystem sys(params4());
  CachedLockClient holder(0, 7);
  CachedLockClient waiter(1, 7);
  holder.acquire();
  Cycle t = 0;
  while (!holder.holding() && t < 200) {
    holder.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  ASSERT_TRUE(holder.holding());
  waiter.acquire();
  // Let the waiter settle into its local spin.
  for (Cycle i = 0; i < 100; ++i) {
    holder.tick(t, sys);
    waiter.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  const auto ops_before = sys.counters().get("proto_reads") +
                          sys.counters().get("proto_read_invs");
  const auto spins_before = waiter.local_spin_cycles();
  for (Cycle i = 0; i < 200; ++i) {
    holder.tick(t, sys);
    waiter.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  const auto ops_after = sys.counters().get("proto_reads") +
                         sys.counters().get("proto_read_invs");
  EXPECT_EQ(ops_after, ops_before) << "spinning generated memory traffic";
  EXPECT_GT(waiter.local_spin_cycles(), spins_before + 150);
}

TEST(CachedLock, TransferCostsAboutThreeAccesses) {
  // §5.3.2: "The entire lock transfer takes approximately the time
  // required to complete three memory accesses" (write-back + read +
  // read-invalidate) — measure the hand-off from release to the next
  // holder's acquisition.
  CfmCacheSystem sys(params4());
  const auto beta = sys.config().block_access_time();
  CachedLockClient a(0, 7);
  CachedLockClient b(1, 7);
  a.acquire();
  Cycle t = 0;
  while (!a.holding() && t < 300) {
    a.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  ASSERT_TRUE(a.holding());
  b.acquire();
  // Let b settle into the local spin.
  for (Cycle i = 0; i < 50; ++i) {
    a.tick(t, sys);
    b.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  const Cycle release_at = t;
  a.release();
  while (!b.holding() && t < release_at + 500) {
    a.tick(t, sys);
    b.tick(t, sys);
    sys.tick(t);
    ++t;
  }
  ASSERT_TRUE(b.holding());
  const Cycle transfer = t - release_at;
  // release rmw (readinv+wb = 2 accesses) + waiter read + waiter rmw
  // (readinv+wb, the wb overlapping the critical section): allow
  // 3*beta .. 7*beta + slack for retries.
  EXPECT_GE(transfer, 3 * beta);
  EXPECT_LE(transfer, 7 * beta + 20);
}

TEST(MultiLock, AtomicAcquisitionOfTwoResources) {
  // Two clients with overlapping two-bit patterns (dining-philosopher
  // style): never both holding, no partial acquisition possible.
  CfmCacheSystem sys(params4());
  const auto words = sys.block_words();
  std::vector<Word> p0(words, 0);
  std::vector<Word> p1(words, 0);
  p0[0] = 0b011;  // resources 0,1
  p1[0] = 0b110;  // resources 1,2 — overlaps resource 1
  CachedLockClient c0(0, 7, p0);
  CachedLockClient c1(1, 7, p1);
  c0.acquire();
  c1.acquire();
  std::uint64_t acq = 0;
  for (Cycle t = 0; t < 6000; ++t) {
    ASSERT_FALSE(c0.holding() && c1.holding()) << "overlap held twice";
    for (auto* c : {&c0, &c1}) {
      if (c->holding()) {
        ++acq;
        c->release();
      }
      c->tick(t, sys);
      if (c->state() == CachedLockClient::State::Idle) c->acquire();
    }
    sys.tick(t);
  }
  EXPECT_GT(c0.acquisitions(), 0u);
  EXPECT_GT(c1.acquisitions(), 0u);
  EXPECT_GT(acq, 20u);
}

TEST(MultiLock, DisjointPatternsProceedIndependently) {
  CfmCacheSystem sys(params4());
  const auto words = sys.block_words();
  std::vector<Word> p0(words, 0);
  std::vector<Word> p1(words, 0);
  p0[0] = 0b0011;
  p1[0] = 0b1100;
  CachedLockClient c0(0, 7, p0);
  CachedLockClient c1(1, 7, p1);
  c0.acquire();
  c1.acquire();
  bool both_held_at_once = false;
  for (Cycle t = 0; t < 2000; ++t) {
    if (c0.holding() && c1.holding()) both_held_at_once = true;
    for (auto* c : {&c0, &c1}) c->tick(t, sys);
    sys.tick(t);
  }
  EXPECT_TRUE(both_held_at_once) << "disjoint multiple locks must coexist";
}

}  // namespace
