// Serving front end (DESIGN.md §13): line protocol, open-loop arrival
// processes, admission control / deterministic shedding, SLO accounting,
// and the headline invariant — a fixed (requests, options, seed) triple
// produces a byte-identical cfm-serve-report/v1 document on every engine
// configuration (serial / parallel, fast path on / off, any span) and
// across a kill / re-feed of the same request stream.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/arrival.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "sim/engine.hpp"

using namespace cfm;
using namespace cfm::serve;

namespace {

/// Restores the process-wide engine tuning even when a test fails.
struct TuningGuard {
  explicit TuningGuard(const sim::EngineTuning& t) {
    sim::set_engine_tuning(t);
  }
  ~TuningGuard() { sim::set_engine_tuning({}); }
};

std::string serve_report(const ServeOptions& opts,
                         const std::vector<Request>& requests) {
  Server server(opts);
  server.submit(requests);
  server.drain();
  return server.report_json().dump();
}

}  // namespace

// ---------------------------------------------------------------------------
// Line protocol.

TEST(Protocol, ParsesAllRequestKinds) {
  EXPECT_EQ(*parse_request_line("read 42"), (Request{RequestKind::Read, 42}));
  EXPECT_EQ(*parse_request_line("write 7"), (Request{RequestKind::Write, 7}));
  EXPECT_EQ(*parse_request_line("swap 0"), (Request{RequestKind::Swap, 0}));
  EXPECT_EQ(*parse_request_line("lock 99"), (Request{RequestKind::Lock, 99}));
  EXPECT_EQ(*parse_request_line("  read   5  "),
            (Request{RequestKind::Read, 5}));
}

TEST(Protocol, SkipsBlanksAndComments) {
  EXPECT_FALSE(parse_request_line("").has_value());
  EXPECT_FALSE(parse_request_line("   ").has_value());
  EXPECT_FALSE(parse_request_line("# a comment").has_value());
}

TEST(Protocol, MalformedLinesThrow) {
  EXPECT_THROW((void)parse_request_line("read"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("read abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("frob 3"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("read 3 4"), std::invalid_argument);
  EXPECT_THROW((void)parse_request_line("read -1"), std::invalid_argument);
}

TEST(Protocol, StreamErrorsNameTheLine) {
  std::istringstream is("read 1\n\nfrob 2\n");
  try {
    (void)parse_request_stream(is, "reqs.txt");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("reqs.txt:3"), std::string::npos)
        << e.what();
  }
}

TEST(Protocol, SynthIsDeterministicAndMixed) {
  const auto a = synth_requests(500, 0.25, 0.1, 0.1, 64, 42);
  const auto b = synth_requests(500, 0.25, 0.1, 0.1, 64, 42);
  EXPECT_EQ(a, b);
  const auto c = synth_requests(500, 0.25, 0.1, 0.1, 64, 43);
  EXPECT_NE(a, c);
  std::size_t kinds[4] = {0, 0, 0, 0};
  for (const auto& r : a) {
    ++kinds[static_cast<std::size_t>(r.kind)];
    EXPECT_LT(r.block, 64u);
  }
  for (const auto count : kinds) EXPECT_GT(count, 0u);
}

// ---------------------------------------------------------------------------
// Open-loop arrival processes.

TEST(Arrival, SameSeedSameSchedule) {
  for (const auto shape : {"poisson", "bursty", "diurnal"}) {
    const auto cfg = ArrivalConfig::parse(shape);
    const auto a = generate_arrivals(cfg, 5, 2000);
    const auto b = generate_arrivals(cfg, 5, 2000);
    EXPECT_EQ(a, b) << shape;
    const auto c = generate_arrivals(cfg, 6, 2000);
    EXPECT_NE(a, c) << shape;
  }
}

TEST(Arrival, SchedulesAreNondecreasing) {
  for (const auto shape : {"poisson", "bursty", "diurnal"}) {
    const auto arrivals =
        generate_arrivals(ArrivalConfig::parse(shape), 11, 2000);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
      ASSERT_GE(arrivals[i], arrivals[i - 1]) << shape << " @" << i;
    }
  }
}

TEST(Arrival, ShapesHitTheConfiguredMeanRate) {
  // All three shapes target the same long-run mean; check the empirical
  // rate over a long horizon to within 10%.
  for (const auto shape : {"poisson", "bursty", "diurnal"}) {
    auto cfg = ArrivalConfig::parse(shape);
    cfg.rate = 0.05;
    const std::size_t n = 50000;
    const auto arrivals = generate_arrivals(cfg, 3, n);
    const auto span = static_cast<double>(arrivals.back());
    const auto measured = static_cast<double>(n) / span;
    EXPECT_NEAR(measured, cfg.rate, cfg.rate * 0.1) << shape;
  }
}

TEST(Arrival, ConfigRoundTripsAndRejectsBadInput) {
  const auto cfg =
      ArrivalConfig::parse("bursty:rate=0.1,burst_factor=4,duty=0.2");
  const auto again = ArrivalConfig::parse(cfg.to_string());
  EXPECT_EQ(cfg.to_string(), again.to_string());
  EXPECT_THROW((void)ArrivalConfig::parse("square"), std::invalid_argument);
  EXPECT_THROW((void)ArrivalConfig::parse("poisson:rate=0"),
               std::invalid_argument);
  EXPECT_THROW((void)ArrivalConfig::parse("poisson:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ArrivalConfig::parse("bursty:burst_factor=1"),
               std::invalid_argument);
  EXPECT_THROW((void)ArrivalConfig::parse("diurnal:swing=1.5"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end serving.

TEST(Serve, CompletesEveryRequestUnderLightLoad) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.01");
  opts.audit = true;
  Server server(opts);
  server.submit(synth_requests(800, 0.25, 0.05, 0.05, 256, 2));
  EXPECT_TRUE(server.drain());
  const auto& st = server.stats();
  EXPECT_EQ(st.offered, 800u);
  EXPECT_EQ(st.completed, 800u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.failed, 0u);
  EXPECT_EQ(server.outstanding(), 0u);
  ASSERT_NE(server.auditor(), nullptr);
  EXPECT_EQ(server.auditor()->violations(), 0u);
}

TEST(Serve, LockRequestsSplitIntoAcquiredAndBusy) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.02");
  Server server(opts);
  // Everyone hammers the same lock word: exactly one test-and-set can see
  // word 0 == 0; every later one must find it held.
  std::vector<Request> reqs(64, Request{RequestKind::Lock, 7});
  server.submit(reqs);
  EXPECT_TRUE(server.drain());
  const auto& st = server.stats();
  EXPECT_EQ(st.lock_acquired, 1u);
  EXPECT_EQ(st.lock_busy, 63u);
}

TEST(Serve, OverloadShedsDeterministically) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("bursty:rate=0.5,burst_factor=8");
  opts.queue_depth = 8;
  opts.seed = 3;
  const auto reqs = synth_requests(3000, 0.25, 0.05, 0.05, 512, 3);
  const auto a = serve_report(opts, reqs);
  const auto b = serve_report(opts, reqs);
  EXPECT_EQ(a, b);
  Server server(opts);
  server.submit(reqs);
  server.drain();
  const auto& st = server.stats();
  EXPECT_GT(st.rejected, 0u);
  EXPECT_EQ(st.offered, st.accepted + st.rejected);
  EXPECT_EQ(st.accepted, st.completed + st.failed);
}

TEST(Serve, SloAttainmentTracksTheBound) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.01");
  opts.slo = 1;  // unattainably tight: every completion misses
  Server tight(opts);
  tight.submit(synth_requests(200, 0.0, 0.0, 0.0, 64, 5));
  tight.drain();
  EXPECT_EQ(tight.stats().within_slo, 0u);

  opts.slo = 0;  // default 4 * beta: light load completes within it
  Server loose(opts);
  loose.submit(synth_requests(200, 0.0, 0.0, 0.0, 64, 5));
  loose.drain();
  EXPECT_EQ(loose.stats().within_slo, loose.stats().completed);
}

TEST(Serve, FaultPlanDegradesGracefully) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.05");
  opts.fault_plan = "bank_dead@500:module=0,bank=3";
  opts.spare_banks = 1;
  opts.audit = true;
  Server server(opts);
  server.submit(synth_requests(1500, 0.25, 0.05, 0.05, 256, 8));
  server.drain();
  const auto& st = server.stats();
  // Degraded, not broken: everything offered resolves (completed or
  // failed after bounded retries), and the conflict-free invariant holds
  // on the remapped machine.
  EXPECT_EQ(st.offered, 1500u);
  EXPECT_EQ(st.completed + st.failed, 1500u);
  EXPECT_GT(st.completed, 1000u);
  ASSERT_NE(server.auditor(), nullptr);
  EXPECT_EQ(server.auditor()->violations(), 0u);
  const auto report = server.report_json();
  EXPECT_TRUE(report.contains("audit"));
}

// ---------------------------------------------------------------------------
// Report determinism across engine configurations.

TEST(Serve, ReportByteIdenticalAcrossEngineConfigs) {
  for (const auto* shape :
       {"poisson:rate=0.05", "bursty:rate=0.2,burst_factor=4",
        "diurnal:rate=0.05"}) {
    ServeOptions opts;
    opts.arrival = ArrivalConfig::parse(shape);
    opts.seed = 17;
    opts.audit = true;
    const auto reqs = synth_requests(1200, 0.25, 0.05, 0.05, 512, 17);

    std::string reference;
    {
      TuningGuard guard({.fast_path = false, .max_span = 1});
      opts.threads = 1;
      reference = serve_report(opts, reqs);
    }
    for (const unsigned threads : {1u, 2u, 4u}) {
      for (const sim::Cycle span : {sim::Cycle{1}, sim::Cycle{64}}) {
        TuningGuard guard({.fast_path = true, .max_span = span});
        opts.threads = threads;
        EXPECT_EQ(serve_report(opts, reqs), reference)
            << shape << " threads=" << threads << " span=" << span;
      }
    }
  }
}

TEST(Serve, ReportByteIdenticalAcrossKillAndRefeed) {
  // An operator killing the server halfway and re-feeding the same
  // request file must reproduce the original report: arrivals are a pure
  // function of (config, seed), not of feeding cadence.
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.05");
  opts.seed = 23;
  const auto reqs = synth_requests(900, 0.25, 0.05, 0.05, 256, 23);
  const auto one_shot = serve_report(opts, reqs);

  Server restarted(opts);
  // Feed in ragged batches with interleaved partial runs — the "second
  // process" replaying the same file after a kill.
  std::size_t fed = 0;
  const std::size_t batches[] = {100, 350, 1, 449};
  for (const auto batch : batches) {
    restarted.submit(std::vector<Request>(reqs.begin() + fed,
                                          reqs.begin() + fed + batch));
    fed += batch;
    restarted.run(batch);  // partial progress between feeds
  }
  ASSERT_EQ(fed, reqs.size());
  restarted.drain();
  EXPECT_EQ(restarted.report_json().dump(), one_shot);
}

// ---------------------------------------------------------------------------
// Time-series telemetry (DESIGN.md §14).

TEST(Serve, TimeseriesByteIdenticalAcrossEnginesUnderFaults) {
  // The flight recorder must not observe the engine's pacing: series
  // bytes are a pure function of (requests, options, seed) even while a
  // fault plan is perturbing service mid-run.
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("bursty:rate=0.2,burst_factor=4");
  opts.seed = 31;
  opts.fault_plan = "bank_dead@2000:module=0,bank=3;brownout@6000+200:module=0";
  opts.spare_banks = 1;
  const auto reqs = synth_requests(1200, 0.25, 0.05, 0.05, 512, 31);

  std::string reference;
  {
    TuningGuard guard({.fast_path = false, .max_span = 1});
    opts.threads = 1;
    reference = serve_report(opts, reqs);
  }
  EXPECT_NE(reference.find("\"timeseries\""), std::string::npos);
  for (const unsigned threads : {2u, 4u}) {
    for (const sim::Cycle span : {sim::Cycle{1}, sim::Cycle{64}}) {
      TuningGuard guard({.fast_path = true, .max_span = span});
      opts.threads = threads;
      EXPECT_EQ(serve_report(opts, reqs), reference)
          << "threads=" << threads << " span=" << span;
    }
  }
}

TEST(Serve, DownsamplingDeterministicAcrossKillAndRefeed) {
  // A tiny recorder forces several scale-doubling folds mid-run.  Folding
  // happens eagerly as the run proceeds, so a killed-and-refed server
  // folds at different moments — the exported series must not notice.
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.1");
  opts.seed = 23;
  opts.telemetry_capacity = 8;
  const auto reqs = synth_requests(1200, 0.25, 0.05, 0.05, 256, 23);
  const auto one_shot = serve_report(opts, reqs);

  Server restarted(opts);
  std::size_t fed = 0;
  const std::size_t batches[] = {100, 350, 1, 749};
  for (const auto batch : batches) {
    restarted.submit(std::vector<Request>(reqs.begin() + fed,
                                          reqs.begin() + fed + batch));
    fed += batch;
    restarted.run(batch);
  }
  ASSERT_EQ(fed, reqs.size());
  restarted.drain();
  const auto report = restarted.report_json();
  EXPECT_EQ(report.dump(), one_shot);
  const auto& ts = report.at("timeseries");
  EXPECT_LE(ts.at("windows").as_array().size(), 8u);
  EXPECT_GT(ts.at("scale").as_uint(), 1u);
}

TEST(Serve, TimeseriesRecordsFaultDipAndRecovery) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.1");
  opts.seed = 7;
  opts.fault_plan = "bank_dead@2000:module=0,bank=3";
  opts.spare_banks = 1;
  Server server(opts);
  server.submit(synth_requests(1500, 0.25, 0.05, 0.05, 256, 7));
  server.drain();
  const auto doc = server.report_json();

  // The live-bank gauge must show the dip from the configured bank count.
  const auto& ts = doc.at("timeseries");
  const auto& gauges = ts.at("gauges").as_array();
  std::size_t live_banks = gauges.size();
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    if (gauges[i].as_string() == "live_banks") live_banks = i;
  }
  ASSERT_LT(live_banks, gauges.size());
  double lo = 1e9, hi = 0;
  for (const auto& w : ts.at("windows").as_array()) {
    const double v = w.at("gauges").as_array()[live_banks].as_double();
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, hi);  // the dead bank is visible in the series

  // And the derived recovery table attributes a bounded MTTR to it.
  const auto& recovery = doc.at("tables").at("recovery").as_array();
  ASSERT_EQ(recovery.size(), 1u);
  EXPECT_EQ(recovery[0].at("kind").as_string(), "bank_dead");
  EXPECT_GT(recovery[0].at("degraded_windows").as_uint(), 0u);
  EXPECT_TRUE(recovery[0].at("recovered").as_bool());
  EXPECT_GT(recovery[0].at("mttr_cycles").as_uint(), 0u);
}

TEST(Serve, LiveStatsAndMetricsFollowTelemetryToggle) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.05");
  {
    Server server(opts);
    server.submit(synth_requests(300, 0.25, 0.05, 0.05, 128, 3));
    server.drain();
    const auto live = server.live_stats_json();
    ASSERT_FALSE(live.is_null());
    EXPECT_EQ(live.at("schema").as_string(), "cfm-telemetry-live/v1");
    EXPECT_GT(live.at("totals").at("completed").as_uint(), 0u);
    const auto text = server.prometheus_text();
    EXPECT_NE(text.find("# TYPE cfm_completed counter"), std::string::npos);
    EXPECT_NE(text.find("cfm_latency_p99"), std::string::npos);
    EXPECT_TRUE(server.report_json().contains("timeseries"));
  }
  {
    ServeOptions off = opts;
    off.telemetry = false;
    Server server(off);
    server.submit(synth_requests(300, 0.25, 0.05, 0.05, 128, 3));
    server.drain();
    EXPECT_TRUE(server.live_stats_json().is_null());
    EXPECT_TRUE(server.prometheus_text().empty());
    EXPECT_FALSE(server.report_json().contains("timeseries"));
    EXPECT_FALSE(server.report_json().contains("anomalies"));
  }
}

TEST(Serve, ReportHasSchemaAndPercentiles) {
  ServeOptions opts;
  opts.arrival = ArrivalConfig::parse("poisson:rate=0.02");
  Server server(opts);
  server.submit(synth_requests(600, 0.25, 0.05, 0.05, 128, 4));
  server.drain();
  const auto doc = server.report_json();
  EXPECT_EQ(doc.at("schema").as_string(), std::string(Server::kSchema));
  const auto& metrics = doc.at("metrics");
  for (const auto* key :
       {"latency_p50", "latency_p95", "latency_p99", "latency_p999"}) {
    ASSERT_TRUE(metrics.contains(key)) << key;
    EXPECT_GT(metrics.at(key).as_double(), 0.0) << key;
  }
  EXPECT_LE(metrics.at("latency_p50").as_double(),
            metrics.at("latency_p99").as_double());
  EXPECT_EQ(metrics.at("offered").as_uint(),
            metrics.at("accepted").as_uint() +
                metrics.at("rejected").as_uint());
  const auto attain = metrics.at("slo_attainment").as_double();
  EXPECT_GE(attain, 0.0);
  EXPECT_LE(attain, 1.0);
}
