// Tests for the closed-form efficiency and latency models (§3.4, §5.4.4).
#include <gtest/gtest.h>

#include "analytic/efficiency.hpp"
#include "analytic/latency.hpp"

namespace {

using namespace cfm::analytic;

TEST(Conventional, ZeroRateIsPerfect) {
  ConventionalModel m{8, 8, 17};
  EXPECT_DOUBLE_EQ(m.conflict_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.efficiency(0.0), 1.0);
  EXPECT_DOUBLE_EQ(m.expected_access_time(0.0), 17.0);
}

TEST(Conventional, MatchesClosedForm) {
  // E(r) = (2m - 2(n-1) r beta) / (2m - (n-1) r beta).
  ConventionalModel m{8, 8, 17};
  for (const double r : {0.01, 0.02, 0.03, 0.05}) {
    const double num = 2.0 * 8 - 2.0 * 7 * r * 17;
    const double den = 2.0 * 8 - 7.0 * r * 17;
    EXPECT_NEAR(m.efficiency(r), num / den, 1e-12);
  }
}

TEST(Conventional, MonotoneDecreasingInRate) {
  ConventionalModel m{8, 8, 17};
  double prev = 2.0;
  for (double r = 0.0; r <= 0.06; r += 0.005) {
    const double e = m.efficiency(r);
    EXPECT_LT(e, prev);
    prev = e;
  }
}

TEST(Conventional, MoreModulesHelp) {
  ConventionalModel few{8, 4, 17};
  ConventionalModel many{8, 16, 17};
  EXPECT_GT(many.efficiency(0.03), few.efficiency(0.03));
}

TEST(Conventional, SaturationClampsToZero) {
  ConventionalModel m{8, 8, 17};
  EXPECT_DOUBLE_EQ(m.efficiency(10.0), 0.0);
  EXPECT_GT(m.expected_access_time(10.0), 1e100);
}

TEST(PartialCfm, FullLocalityOnlyRemoteInterferenceVanishes) {
  PartialCfmModel m{64, 8, 17};
  // lambda = 1: every access is local and P1 has factor (1 - lambda) = 0,
  // but P2 is irrelevant; combined P = ((-m + 2 + m - 2)/(m-1)) r beta = 0.
  EXPECT_NEAR(m.conflict_probability(0.05, 1.0), 0.0, 1e-12);
  EXPECT_NEAR(m.efficiency(0.05, 1.0), 1.0, 1e-12);
}

TEST(PartialCfm, ComponentsMatchClosedForms) {
  PartialCfmModel m{64, 8, 17};
  const double r = 0.03;
  const double l = 0.7;
  EXPECT_NEAR(m.local_block_probability(r, l), (1 - l) * r * 17, 1e-12);
  EXPECT_NEAR(m.remote_block_probability(r, l),
              (1 - (1 - l) / 7.0) * r * 17, 1e-12);
  const double combined =
      ((-8.0 * l * l + 2 * l + 8 - 2) / 7.0) * r * 17;
  EXPECT_NEAR(m.conflict_probability(r, l), combined, 1e-12);
  // Combined must equal the mixture P1*l + P2*(1-l).
  EXPECT_NEAR(m.conflict_probability(r, l),
              m.local_block_probability(r, l) * l +
                  m.remote_block_probability(r, l) * (1 - l),
              1e-12);
}

TEST(PartialCfm, EfficiencyOrderedByLocality) {
  // Figs 3.14/3.15: higher locality -> higher efficiency, all rates.
  PartialCfmModel m{64, 8, 17};
  for (const double r : {0.01, 0.03, 0.05}) {
    EXPECT_GT(m.efficiency(r, 0.9), m.efficiency(r, 0.7));
    EXPECT_GT(m.efficiency(r, 0.7), m.efficiency(r, 0.5));
    EXPECT_GT(m.efficiency(r, 0.5), m.efficiency(r, 0.3));
  }
}

TEST(PartialCfm, BeatsConventionalAtEqualConnectivity) {
  // Fig 3.14's comparison: 64-processor partial CFM with 8 modules vs a
  // conventional machine with 64 modules.
  PartialCfmModel partial{64, 8, 17};
  ConventionalModel conventional{64, 64, 17};
  for (const double r : {0.02, 0.04, 0.06}) {
    for (const double l : {0.9, 0.7, 0.5, 0.3}) {
      EXPECT_GT(partial.efficiency(r, l), conventional.efficiency(r))
          << "r=" << r << " lambda=" << l;
    }
  }
}

TEST(Latency, Table55Values) {
  HierarchicalLatencyModel m{8, 2};
  EXPECT_EQ(m.beta(), 9u);
  EXPECT_EQ(m.local_cluster_read(), 9u);
  EXPECT_EQ(m.global_read(), 27u);
  EXPECT_EQ(m.dirty_remote_read_paper(), 63u);
  const DashLatencies dash;
  EXPECT_LT(m.local_cluster_read(), dash.local_cluster_read);
  EXPECT_LT(m.global_read(), dash.global_read);
  EXPECT_LT(m.dirty_remote_read_paper(), dash.dirty_remote_read);
}

TEST(Latency, Table56Values) {
  HierarchicalLatencyModel m{64, 2};
  EXPECT_EQ(m.beta(), 65u);
  EXPECT_EQ(m.local_cluster_read(), 65u);
  EXPECT_EQ(m.global_read(), 195u);
  const Ksr1Latencies ksr;
  EXPECT_LT(m.local_cluster_read(), ksr.local_ring_read);
  EXPECT_LT(m.global_read(), ksr.global_ring_read);
}

}  // namespace
