// Tests for the Monarch/OMP phase-stall baseline, and the contrast with
// the CFM's non-stall start (§2.1.2/§2.1.3 vs §3.1.1), plus the
// realizability of the CFM schedule on the synchronous omega.
#include <gtest/gtest.h>

#include "cfm/at_space.hpp"
#include "cfm/cfm_memory.hpp"
#include "mem/phase_aligned.hpp"
#include "net/omega.hpp"

namespace {

using namespace cfm;
using cfm::sim::Cycle;

TEST(PhaseAligned, NoStallWhenAligned) {
  mem::PhaseAlignedMemory m(8, 0, 17);
  EXPECT_EQ(m.stall_for(0), 0u);
  EXPECT_EQ(m.stall_for(8), 0u);
  EXPECT_EQ(m.completion(16), 16u + 17u);
}

TEST(PhaseAligned, StallUntilNextAlignedSlot) {
  mem::PhaseAlignedMemory m(8, 0, 17);
  EXPECT_EQ(m.stall_for(1), 7u);
  EXPECT_EQ(m.stall_for(7), 1u);
  EXPECT_EQ(m.completion(3), 3u + 5u + 17u);
}

TEST(PhaseAligned, NonzeroPhase) {
  mem::PhaseAlignedMemory m(4, 2, 9);
  EXPECT_EQ(m.stall_for(2), 0u);
  EXPECT_EQ(m.stall_for(3), 3u);
  EXPECT_EQ(m.stall_for(0), 2u);
}

TEST(PhaseAligned, ExpectedStallFormula) {
  EXPECT_DOUBLE_EQ(mem::PhaseAlignedMemory(8, 0, 17).expected_stall(), 3.5);
  EXPECT_DOUBLE_EQ(mem::PhaseAlignedMemory(2, 0, 9).expected_stall(), 0.5);
  EXPECT_DOUBLE_EQ(mem::PhaseAlignedMemory(1, 0, 9).expected_stall(), 0.0);
}

TEST(PhaseAligned, CfmNeverStallsAtAnyPhase) {
  // Sweep every arrival phase: the Monarch-style memory stalls 0..7
  // cycles, the CFM always completes in exactly beta.
  mem::PhaseAlignedMemory monarch(8, 0, 8);
  core::CfmMemory cfm_mem(core::CfmConfig::make(8, 1));
  const auto beta = cfm_mem.config().block_access_time();
  Cycle t = 0;
  for (Cycle arrival = 0; arrival < 8; ++arrival) {
    while (t < arrival) cfm_mem.tick(t++);
    const auto op =
        cfm_mem.issue(arrival, 0, core::BlockOpKind::Read, arrival);
    while (cfm_mem.result(op) == nullptr) cfm_mem.tick(t++);
    const auto r = cfm_mem.take_result(op);
    EXPECT_EQ(r->completed - r->issued, beta);
    EXPECT_EQ(monarch.completion(arrival) - arrival,
              monarch.stall_for(arrival) + 8);
  }
}

TEST(ScheduleRealizability, CfmC1ScheduleIsTheSyncOmegaShift) {
  // The c = 1 CFM address schedule bank(t, p) = (t + p) mod b is exactly
  // the shift family the synchronous omega realizes — tying the cfm and
  // net layers together.
  const auto cfg = core::CfmConfig::make(8, 1);
  core::AtSpace at(cfg);
  net::SyncOmega omega(8);
  for (Cycle t = 0; t < 16; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      EXPECT_EQ(at.bank_at(t, p), omega.output_for(t, p));
    }
  }
}

TEST(ScheduleRealizability, CfmC2ScheduleIsAConflictFreePermutationFamily) {
  // With c = 2 the per-slot processor->bank map is a partial injection
  // into the 2n banks; extended arbitrarily it must still be realizable
  // by an omega of 2n ports.  Verify the *used* connections never collide
  // and are coverable by a schedulable permutation.
  const auto cfg = core::CfmConfig::make(4, 2);
  core::AtSpace at(cfg);
  net::OmegaTopology topo(8);
  for (Cycle t = 0; t < 8; ++t) {
    std::vector<net::Port> perm(8);
    std::vector<bool> used_out(8, false);
    // Processors occupy ports 2p (the demux pairs); fill their targets.
    std::vector<int> target(8, -1);
    for (std::uint32_t p = 0; p < 4; ++p) {
      const auto bank = at.bank_at(t, p);
      ASSERT_FALSE(used_out[bank]);
      used_out[bank] = true;
      target[2 * p] = static_cast<int>(bank);
    }
    // Complete to a full permutation greedily (idle lines to idle banks).
    std::size_t next_free = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      if (target[i] >= 0) {
        perm[i] = static_cast<net::Port>(target[i]);
        continue;
      }
      while (used_out[next_free]) ++next_free;
      perm[i] = static_cast<net::Port>(next_free);
      used_out[next_free] = true;
    }
    EXPECT_TRUE(net::is_permutation(perm)) << "slot " << t;
  }
}

}  // namespace
