// Tests for the directory (DASH-style) baseline (§5.1.2).
#include <gtest/gtest.h>

#include "cache/directory.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;

DirectoryProtocol::Outcome run_one(DirectoryProtocol& sys, Cycle& t,
                                   DirectoryProtocol::ReqId id) {
  for (int i = 0; i < 5000; ++i) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(id)) return *r;
  }
  ADD_FAILURE() << "request timed out";
  return {};
}

TEST(Directory, ClusterAndHomeMapping) {
  DirectoryProtocol sys({});
  EXPECT_EQ(sys.cluster_of(0), 0u);
  EXPECT_EQ(sys.cluster_of(5), 1u);
  EXPECT_EQ(sys.cluster_of(15), 3u);
  EXPECT_EQ(sys.home_of(6), 2u);
}

TEST(Directory, LocalReadCostsLocalMiss) {
  DirectoryProtocol sys({});
  Cycle t = 0;
  // Processor 0 (cluster 0) reading a block homed at cluster 0.
  const auto r = run_one(sys, t, sys.read(t, 0, 4));
  EXPECT_FALSE(r.remote);
  EXPECT_EQ(r.completed - r.issued, 29u);
}

TEST(Directory, RemoteCleanReadCosts100) {
  DirectoryProtocol sys({});
  Cycle t = 0;
  const auto r = run_one(sys, t, sys.read(t, 0, 1));  // home = cluster 1
  EXPECT_TRUE(r.remote);
  EXPECT_FALSE(r.dirty_third_party);
  EXPECT_EQ(r.completed - r.issued, 100u);
}

TEST(Directory, DirtyRemoteReadCosts130) {
  DirectoryProtocol sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.write(t, 4, 1));  // proc 4 (cluster 1) owns
  const auto r = run_one(sys, t, sys.read(t, 0, 1));
  EXPECT_TRUE(r.dirty_third_party);
  EXPECT_EQ(r.completed - r.issued, 130u);
}

TEST(Directory, WritePaysInvalidationsAndAcks) {
  DirectoryProtocol sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.read(t, 1, 1));
  (void)run_one(sys, t, sys.read(t, 2, 1));
  (void)run_one(sys, t, sys.read(t, 3, 1));
  const auto acks_before = sys.acks();
  const auto r = run_one(sys, t, sys.write(t, 0, 1));
  EXPECT_EQ(r.invalidations, 3u);
  EXPECT_EQ(sys.acks(), acks_before + 3);
  // Invalidation+ack round adds latency on top of the remote miss.
  EXPECT_EQ(r.completed - r.issued, 100u + 40u);
}

TEST(Directory, HomeSerializesSameBlock) {
  DirectoryProtocol sys({});
  Cycle t = 0;
  const auto a = sys.read(t, 0, 2);
  const auto b = sys.read(t, 1, 2);
  Cycle done_a = 0;
  Cycle done_b = 0;
  for (int i = 0; i < 2000 && (done_a == 0 || done_b == 0); ++i) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(a)) done_a = r->completed;
    if (auto r = sys.take_result(b)) done_b = r->completed;
  }
  ASSERT_NE(done_a, 0u);
  ASSERT_NE(done_b, 0u);
  EXPECT_NE(done_a, done_b) << "same-block transactions must serialize";
}

TEST(Directory, MessageCountGrowsWithSharers) {
  DirectoryProtocol::Params params;
  params.processors = 16;
  params.clusters = 4;
  DirectoryProtocol sys(params);
  Cycle t = 0;
  for (std::uint32_t p = 1; p < 9; ++p) {
    (void)run_one(sys, t, sys.read(t, p, 1));
  }
  const auto msgs_before = sys.messages();
  (void)run_one(sys, t, sys.write(t, 0, 1));
  // 8 sharers -> 8 invalidations + 8 acks + request/reply.
  EXPECT_EQ(sys.messages() - msgs_before, 2u + 16u);
}

}  // namespace
