// Unit tests for the simulation kernel: RNG, statistics, engine.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/engine.hpp"
#include "sim/log.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace {

using namespace cfm::sim;

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto x = rng.below(10);
    ASSERT_LT(x, 10u);
    ++hist[static_cast<std::size_t>(x)];
  }
  for (const int h : hist) EXPECT_NEAR(h, 10000, 600);
}

TEST(Rng, BetweenInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.between(3, 5);
    ASSERT_GE(x, 3u);
    ASSERT_LE(x, 5u);
    saw_lo |= (x == 3);
    saw_hi |= (x == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(17);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

// Regression: between(0, UINT64_MAX) makes the span wrap to 0, which used
// to feed below(0) and pin every draw to lo.  The full-range case must
// fall back to the raw generator draw.
TEST(Rng, BetweenFullRangeIsNotPinned) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  Rng rng(19);
  Rng raw(19);
  bool high_half = false;
  bool low_half = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.between(0, kMax);
    // Must be the raw xoshiro output — uniform over all 64 bits.
    EXPECT_EQ(x, raw());
    high_half |= (x > kMax / 2);
    low_half |= (x <= kMax / 2);
  }
  EXPECT_TRUE(high_half);
  EXPECT_TRUE(low_half);
}

TEST(Rng, BetweenFullRangeWithNonzeroLoStillWraps) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // hi - lo + 1 wraps to 0 for any lo = hi + 1 (mod 2^64); the contract is
  // a full-range draw, so values below lo are legitimate.
  Rng rng(23);
  bool below_lo = false;
  for (int i = 0; i < 1000; ++i) {
    below_lo |= (rng.between(1, 0) < 1) || (rng.between(kMax, kMax - 1) < kMax);
  }
  EXPECT_TRUE(below_lo);
}

TEST(Rng, SplitChildUnaffectedByParentAdvance) {
  // Splitting must hand the child its own state: advancing the parent
  // afterwards cannot perturb the child's stream.
  Rng parent_a(29);
  Rng parent_b(29);
  Rng child_a = parent_a.split();
  Rng child_b = parent_b.split();
  for (int i = 0; i < 500; ++i) (void)parent_a();  // only parent A advances
  for (int i = 0; i < 200; ++i) EXPECT_EQ(child_a(), child_b());
}

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a;
  RunningStat b;
  RunningStat all;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform() * 10;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(1.0, 4);
  for (const double x : {0.5, 1.5, 1.7, 3.9, 10.0}) h.add(x);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, Quantile) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10));
  EXPECT_NEAR(h.quantile(0.5), 5.0, 1.0);
  EXPECT_NEAR(h.quantile(0.9), 9.0, 1.0);
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty(1.0, 4);
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);

  // q = 0 is never "satisfied" by an empty prefix; q > 1 clamps.
  Histogram h(1.0, 4);
  h.add(2.5);  // lands in bucket [2, 3)
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.01), 3.0);  // leading empty buckets must not count
  EXPECT_EQ(h.quantile(1.0), 3.0);
  EXPECT_EQ(h.quantile(2.0), 3.0);

  // All samples in overflow: the quantile saturates at the top edge.
  Histogram over(1.0, 2);
  over.add(50.0);
  EXPECT_EQ(over.quantile(0.5), 2.0);
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat empty1;
  RunningStat empty2;
  empty1.merge(empty2);
  EXPECT_EQ(empty1.count(), 0u);
  EXPECT_EQ(empty1.mean(), 0.0);
  EXPECT_EQ(empty1.variance(), 0.0);

  RunningStat data;
  for (const double x : {1.0, 2.0, 3.0}) data.add(x);
  const auto count = data.count();
  const auto mean = data.mean();
  const auto var = data.variance();

  // empty ⊕ nonempty adopts the nonempty side exactly.
  RunningStat lhs;
  lhs.merge(data);
  EXPECT_EQ(lhs.count(), count);
  EXPECT_DOUBLE_EQ(lhs.mean(), mean);
  EXPECT_DOUBLE_EQ(lhs.variance(), var);
  EXPECT_DOUBLE_EQ(lhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(lhs.max(), 3.0);

  // nonempty ⊕ empty is a no-op.
  data.merge(empty2);
  EXPECT_EQ(data.count(), count);
  EXPECT_DOUBLE_EQ(data.mean(), mean);
  EXPECT_DOUBLE_EQ(data.variance(), var);
}

TEST(RunningStat, MergedHalvesMatchWholeStream) {
  RunningStat lo;
  RunningStat hi;
  RunningStat whole;
  Rng rng(77);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 100 - 50;
    (i < 250 ? lo : hi).add(x);
    whole.add(x);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), whole.count());
  EXPECT_NEAR(lo.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(lo.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(lo.min(), whole.min());
  EXPECT_DOUBLE_EQ(lo.max(), whole.max());
  EXPECT_NEAR(lo.sum(), whole.sum(), 1e-9);
}

TEST(CounterSet, MergeIsAdditive) {
  CounterSet a;
  CounterSet b;
  a.inc("x", 3);
  a.inc("y");
  b.inc("x", 2);
  b.inc("z", 5);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("y"), 1u);
  EXPECT_EQ(a.get("z"), 5u);
  EXPECT_EQ(b.get("x"), 2u);  // source untouched
}

TEST(StatShard, MergeCombinesCountersAndRunningStats) {
  StatShard a;
  StatShard b;
  a.counters.inc("ops", 10);
  a.stat("lat").add(4.0);
  b.counters.inc("ops", 5);
  b.stat("lat").add(8.0);
  b.stat("depth").add(1.0);
  a.merge(b);
  EXPECT_EQ(a.counters.get("ops"), 15u);
  EXPECT_EQ(a.stat("lat").count(), 2u);
  EXPECT_DOUBLE_EQ(a.stat("lat").mean(), 6.0);
  EXPECT_EQ(a.stat("depth").count(), 1u);
}

TEST(CounterSet, IncrementAndQuery) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0u);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y");
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
  c.reset();
  EXPECT_EQ(c.get("x"), 0u);
}

TEST(Engine, PhasesRunInOrderEveryCycle) {
  Engine e;
  std::vector<int> order;
  e.on(Phase::Commit, [&](Cycle) { order.push_back(3); });
  e.on(Phase::Issue, [&](Cycle) { order.push_back(0); });
  e.on(Phase::Memory, [&](Cycle) { order.push_back(2); });
  e.on(Phase::Network, [&](Cycle) { order.push_back(1); });
  e.run_for(2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
  EXPECT_EQ(e.now(), 2u);
}

TEST(Engine, RunUntilStopsOnPredicate) {
  Engine e;
  int counter = 0;
  e.on(Phase::Issue, [&](Cycle) { ++counter; });
  const bool done = e.run_until([&] { return counter >= 5; }, 100);
  EXPECT_TRUE(done);
  EXPECT_EQ(counter, 5);
}

TEST(Engine, RunUntilTimesOut) {
  Engine e;
  const bool done = e.run_until([] { return false; }, 10);
  EXPECT_FALSE(done);
  EXPECT_EQ(e.now(), 10u);
}

TEST(TraceLog, EmitsOnlyWhenEnabled) {
  TraceLog log;
  int calls = 0;
  log.lazy(1, "t", [&](std::ostream&) { ++calls; });
  EXPECT_EQ(calls, 0);  // disabled: the formatter must not run
  std::vector<std::string> lines;
  log.set_sink([&](std::string_view s) { lines.emplace_back(s); });
  log.emit(7, "bank", "hello");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "cycle 7 [bank] hello");
  log.lazy(8, "x", [&](std::ostream& os) { os << "lazy"; ++calls; });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(lines.back(), "cycle 8 [x] lazy");
}

}  // namespace
