// Tests for the sense-reversing barrier on the CFM cache protocol.
#include <gtest/gtest.h>

#include <vector>

#include "cache/barrier.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;

CfmCacheSystem::Params params(std::uint32_t n) {
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(n);
  return p;
}

TEST(Barrier, AllPartiesReleasedTogether) {
  constexpr std::uint32_t kParties = 4;
  CfmCacheSystem sys(params(kParties));
  std::vector<BarrierClient> clients;
  for (std::uint32_t p = 0; p < kParties; ++p) {
    clients.emplace_back(p, 9, kParties);
  }
  for (auto& c : clients) c.arrive();
  Cycle t = 0;
  bool all = false;
  while (!all && t < 3000) {
    for (auto& c : clients) c.tick(t, sys);
    sys.tick(t);
    ++t;
    all = true;
    for (auto& c : clients) {
      if (!c.released()) all = false;
    }
  }
  EXPECT_TRUE(all) << "barrier never released";
}

TEST(Barrier, NobodyPassesEarly) {
  constexpr std::uint32_t kParties = 4;
  CfmCacheSystem sys(params(kParties));
  std::vector<BarrierClient> clients;
  for (std::uint32_t p = 0; p < kParties; ++p) {
    clients.emplace_back(p, 9, kParties);
  }
  // Only three of four arrive.
  clients[0].arrive();
  clients[1].arrive();
  clients[2].arrive();
  Cycle t = 0;
  for (; t < 1500; ++t) {
    for (auto& c : clients) c.tick(t, sys);
    sys.tick(t);
    ASSERT_FALSE(clients[0].released() || clients[1].released() ||
                 clients[2].released())
        << "released before the last arriver at t=" << t;
  }
  // The straggler arrives; everyone must release.
  clients[3].arrive();
  bool all = false;
  while (!all && t < 4000) {
    for (auto& c : clients) c.tick(t, sys);
    sys.tick(t);
    ++t;
    all = clients[0].released() && clients[1].released() &&
          clients[2].released() && clients[3].released();
  }
  EXPECT_TRUE(all);
}

TEST(Barrier, ReusableAcrossRounds) {
  constexpr std::uint32_t kParties = 4;
  constexpr int kRounds = 10;
  CfmCacheSystem sys(params(kParties));
  std::vector<BarrierClient> clients;
  for (std::uint32_t p = 0; p < kParties; ++p) {
    clients.emplace_back(p, 9, kParties);
  }
  Cycle t = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (auto& c : clients) c.arrive();
    bool all = false;
    const Cycle deadline = t + 5000;
    while (!all && t < deadline) {
      for (auto& c : clients) c.tick(t, sys);
      sys.tick(t);
      ++t;
      all = true;
      for (auto& c : clients) {
        if (!c.released()) all = false;
      }
    }
    ASSERT_TRUE(all) << "round " << round << " stuck";
    for (auto& c : clients) c.reset();
  }
  for (auto& c : clients) {
    EXPECT_EQ(c.rounds(), static_cast<std::uint64_t>(kRounds));
  }
}

TEST(Barrier, StaggeredArrivalsStillAlign) {
  constexpr std::uint32_t kParties = 8;
  CfmCacheSystem sys(params(kParties));
  std::vector<BarrierClient> clients;
  for (std::uint32_t p = 0; p < kParties; ++p) {
    clients.emplace_back(p, 9, kParties);
  }
  Cycle t = 0;
  // Arrivals spread 40 cycles apart.
  for (std::uint32_t p = 0; p < kParties; ++p) {
    clients[p].arrive();
    for (int i = 0; i < 40; ++i) {
      for (auto& c : clients) c.tick(t, sys);
      sys.tick(t);
      ++t;
    }
  }
  bool all = false;
  while (!all && t < 10000) {
    for (auto& c : clients) c.tick(t, sys);
    sys.tick(t);
    ++t;
    all = true;
    for (auto& c : clients) {
      if (!c.released()) all = false;
    }
  }
  EXPECT_TRUE(all);
  // Early arrivers waited longer than the last one.
  EXPECT_GT(clients[0].wait_cycles().mean(), clients[7].wait_cycles().mean());
}

}  // namespace
