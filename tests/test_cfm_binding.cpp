// Tests for resource binding on the CFM architecture (§6.5.1): component
// patterns and the atomic-multiple-lock binding farm, including the
// dining philosophers (Fig 6.5) with no deadlock and no starvation.
#include <gtest/gtest.h>

#include "binding/cfm_binding.hpp"

namespace {

using namespace cfm::bind;
using cfm::sim::Word;

TEST(Patterns, SingleComponent) {
  const auto p = pattern_for_range({5, 5, 1}, 2);
  EXPECT_EQ(p, (std::vector<Word>{0b100000, 0}));
}

TEST(Patterns, StridedComponents) {
  const auto p = pattern_for_range({0, 6, 2}, 1);
  EXPECT_EQ(p[0], 0b1010101u);
}

TEST(Patterns, CrossWordComponents) {
  const auto p = pattern_for_range({63, 64, 1}, 2);
  EXPECT_EQ(p[0], Word{1} << 63);
  EXPECT_EQ(p[1], 1u);
}

TEST(Patterns, MultipleRangesUnion) {
  const auto p = pattern_for_ranges({{0, 0, 1}, {3, 3, 1}}, 1);
  EXPECT_EQ(p[0], 0b1001u);
}

TEST(Patterns, OutOfRangeThrows) {
  EXPECT_THROW(pattern_for_range({0, 64, 1}, 1), std::invalid_argument);
  EXPECT_THROW(pattern_for_range({-1, 3, 1}, 1), std::invalid_argument);
}

TEST(DiningRegions, NeighborsOverlapNonNeighborsDoNot) {
  const auto regions = dining_philosopher_regions(5);
  ASSERT_EQ(regions.size(), 5u);
  const auto p0 = pattern_for_ranges(regions[0], 1);  // chopsticks 0,1
  const auto p1 = pattern_for_ranges(regions[1], 1);  // chopsticks 1,2
  const auto p2 = pattern_for_ranges(regions[2], 1);  // chopsticks 2,3
  EXPECT_NE(p0[0] & p1[0], 0u);
  EXPECT_EQ(p0[0] & p2[0], 0u);
  // The last philosopher wraps around to chopstick 0.
  const auto p4 = pattern_for_ranges(regions[4], 1);
  EXPECT_NE(p4[0] & p0[0], 0u);
}

TEST(BindingFarm, DiningPhilosophersNoDeadlockNoStarvation) {
  // Fig 6.5: atomic multiple lock acquires both chopsticks or neither, so
  // the classic deadlock cannot occur and everyone eventually eats.
  const std::uint32_t n = 4;
  const auto result =
      run_cfm_binding_farm(n, dining_philosopher_regions(n), 10, 30000);
  EXPECT_GT(result.binds, 40u) << "philosophers must keep eating";
  EXPECT_GT(result.min_per_proc, 0.0) << "a philosopher starved";
}

TEST(BindingFarm, DisjointRegionsBindFreely) {
  const std::uint32_t n = 4;
  std::vector<std::vector<IndexRange>> regions(n);
  for (std::uint32_t p = 0; p < n; ++p) {
    regions[p] = {IndexRange{p, p, 1}};  // private component each
  }
  const auto result = run_cfm_binding_farm(n, regions, 5, 10000);
  EXPECT_GT(result.binds, 100u);
  EXPECT_GT(result.min_per_proc, 10.0);
}

TEST(BindingFarm, FullOverlapSerializes) {
  const std::uint32_t n = 4;
  std::vector<std::vector<IndexRange>> regions(
      n, {IndexRange{0, 3, 1}});  // everyone wants all four components
  const auto result = run_cfm_binding_farm(n, regions, 5, 15000);
  EXPECT_GT(result.binds, 10u);
  EXPECT_GT(result.min_per_proc, 0.0);
}

TEST(BindingFarm, ShapeValidation) {
  EXPECT_THROW((void)run_cfm_binding_farm(4, {}, 5, 100),
               std::invalid_argument);
}

}  // namespace
