// Tests for the batch-tick + quiescence fast path (DESIGN.md §12): the
// skip / jump / span rules in isolation, the run_until per-cycle
// guarantee, and the headline cross-product bit-exactness suite —
// {serial, parallel} x {fast path on, off} x max_span {1, 7, 64} x
// {no faults, bank_dead + brownout} all produce identical results on a
// 64-processor hierarchical CFM machine driven by the wake-aware
// think-time workload.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cache/hierarchical.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/stats.hpp"
#include "workload/hier_driver.hpp"

namespace {

using namespace cfm;
using sim::Cycle;
using sim::Engine;
using sim::EngineConfig;
using sim::Phase;

// ------------------------------------------------------- layout / tuning --

static_assert(alignof(sim::StatShard) == sim::kCacheLineBytes,
              "StatShard must start on its own cache line");
static_assert(sizeof(sim::StatShard) % sim::kCacheLineBytes == 0,
              "adjacent StatShards must not share a line");

TEST(EngineTuning, OverridesApplyToEveryConstructedEngine) {
  sim::set_engine_tuning({.fast_path = false, .max_span = 7});
  Engine tuned;
  EXPECT_FALSE(tuned.config().fast_path);
  EXPECT_EQ(tuned.config().max_span, 7u);
  sim::set_engine_tuning({});  // clear for the rest of the suite
  Engine plain;
  EXPECT_TRUE(plain.config().fast_path);
  EXPECT_EQ(plain.config().max_span, 64u);
}

// ------------------------------------------------------------- skip rule --

// Acts every `period` cycles and publishes the next pulse as its hint;
// raw_ticks counts how often the engine actually invoked it.
class PulseComponent final : public sim::Component {
 public:
  PulseComponent(std::string name, sim::DomainId domain, Cycle period)
      : Component(std::move(name), domain, sim::phase_bit(Phase::Memory)),
        period_(period) {}

  void tick_phase(Phase phase, Cycle now) override {
    ++raw_ticks;
    if (now % period_ != 0) return;
    ++pulses;
    checksum = checksum * 31 + now;
    set_next_event(phase, now + period_);
  }

  Cycle period_;
  std::uint64_t raw_ticks = 0;
  std::uint64_t pulses = 0;
  std::uint64_t checksum = 0;
};

TEST(FastPath, SkipRuleMatchesReferenceWithFewerInvocations) {
  constexpr Cycle kCycles = 1000;
  constexpr Cycle kPeriod = 10;

  Engine ref(EngineConfig{.fast_path = false});
  PulseComponent a("pulse", sim::kSharedDomain, kPeriod);
  ref.add(a);
  ref.run_for(kCycles);

  Engine fast(EngineConfig{.fast_path = true});
  PulseComponent b("pulse", sim::kSharedDomain, kPeriod);
  fast.add(b);
  fast.run_for(kCycles);

  EXPECT_EQ(a.raw_ticks, kCycles);
  EXPECT_EQ(a.pulses, b.pulses);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(fast.now(), kCycles);
  // The fast path visited only the pulse cycles (plus none extra).
  EXPECT_EQ(b.raw_ticks, b.pulses);
}

// ------------------------------------------------------------- jump rule --

TEST(FastPath, JumpRuleTeleportsOverQuiescentStretches) {
  // Publishes kNeverCycle after cycle 5: from then on the machine is
  // provably idle and run_for must jump straight to the target.
  class GoesQuiet final : public sim::Component {
   public:
    GoesQuiet() : Component("quiet", sim::kSharedDomain,
                            sim::phase_bit(Phase::Issue)) {}
    void tick_phase(Phase phase, Cycle now) override {
      ++raw_ticks;
      if (now >= 5) set_next_event(phase, sim::kNeverCycle);
    }
    std::uint64_t raw_ticks = 0;
  };

  Engine fast;
  GoesQuiet c;
  fast.add(c);
  fast.run_for(1'000'000);
  EXPECT_EQ(fast.now(), 1'000'000u);
  EXPECT_EQ(c.raw_ticks, 6u);  // cycles 0..5, then one jump
}

// ------------------------------------------------------------- span rule --

// Sole component of an independent domain: the fast path must hand it
// whole spans; the recorded spans must tile [0, cycles) exactly.
class SpanRecorder final : public sim::Component {
 public:
  SpanRecorder(std::string name, sim::DomainId domain)
      : Component(std::move(name), domain, sim::phase_bit(Phase::Memory)) {}

  void tick_phase(Phase, Cycle now) override {
    ++cell_ticks;
    checksum = checksum * 31 + now;
  }
  void tick_span(Phase phase, Cycle begin, Cycle end) override {
    spans.emplace_back(begin, end);
    Component::tick_span(phase, begin, end);
  }

  std::vector<std::pair<Cycle, Cycle>> spans;
  std::uint64_t cell_ticks = 0;
  std::uint64_t checksum = 0;
};

TEST(FastPath, SoleDomainComponentReceivesTilingSpans) {
  constexpr Cycle kCycles = 1000;
  constexpr Cycle kSpan = 64;
  Engine fast(EngineConfig{.fast_path = true, .max_span = kSpan});
  SpanRecorder rec("rec", fast.allocate_domain());
  fast.add(rec);
  fast.run_for(kCycles);

  ASSERT_FALSE(rec.spans.empty());
  Cycle expect_begin = 0;
  for (const auto& [begin, end] : rec.spans) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_GT(end, begin);
    EXPECT_LE(end - begin, kSpan);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, kCycles);
  EXPECT_EQ(rec.cell_ticks, kCycles);

  Engine ref(EngineConfig{.fast_path = false});
  SpanRecorder r2("rec", ref.allocate_domain());
  ref.add(r2);
  ref.run_for(kCycles);
  EXPECT_TRUE(r2.spans.empty());  // reference path never batches
  EXPECT_EQ(r2.checksum, rec.checksum);
}

// A span-capable shared cursor must not veto fusion for domain groups,
// and its batched form must leave the same final state as per-cycle.
TEST(FastPath, SpanCapableSharedCursorDoesNotVetoFusion) {
  constexpr Cycle kCycles = 512;

  auto build = [](Engine& engine, Cycle* slot, SpanRecorder*& rec_out) {
    auto cursor = std::make_shared<sim::LambdaComponent>("cursor",
                                                         sim::kSharedDomain);
    cursor->on(Phase::Network, [slot](Cycle now) { *slot = now % 17; });
    cursor->on_span(Phase::Network,
                    [slot](Cycle, Cycle end) { *slot = (end - 1) % 17; });
    cursor->set_span_capable();
    engine.add(std::move(cursor));
    auto rec = std::make_shared<SpanRecorder>("rec", engine.allocate_domain());
    rec_out = rec.get();
    engine.add(std::move(rec));
  };

  Engine fast(EngineConfig{.fast_path = true, .max_span = 64});
  Cycle fast_slot = 0;
  SpanRecorder* fast_rec = nullptr;
  build(fast, &fast_slot, fast_rec);
  fast.run_for(kCycles);

  Engine ref(EngineConfig{.fast_path = false});
  Cycle ref_slot = 0;
  SpanRecorder* ref_rec = nullptr;
  build(ref, &ref_slot, ref_rec);
  ref.run_for(kCycles);

  // The kAlways cursor did not pin spans to one cycle...
  ASSERT_FALSE(fast_rec->spans.empty());
  EXPECT_GT(fast_rec->spans.front().second - fast_rec->spans.front().first, 1u);
  // ...and batched execution left identical state.
  EXPECT_EQ(fast_slot, ref_slot);
  EXPECT_EQ(fast_rec->checksum, ref_rec->checksum);
}

// ------------------------------------------------- run_until exactness --

TEST(FastPath, RunUntilEvaluatesPredicateEveryCycle) {
  Engine fast;  // fast path on by default
  // A machine that goes fully quiescent immediately: jumps would be legal
  // under run_for, but run_until must still check done() every cycle.
  auto quiet = std::make_shared<sim::LambdaComponent>(
      "quiet", sim::kSharedDomain, Phase::Issue, [](Cycle) {});
  quiet->set_next_event(sim::kNeverCycle);
  fast.add(std::move(quiet));
  std::uint64_t checks = 0;
  const bool fired = fast.run_until(
      [&checks] {
        ++checks;
        return checks == 100;
      },
      1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(checks, 100u);
  // done() is pre-checked each cycle (reference semantics): the 100th
  // evaluation happens with 99 cycles stepped, jumps notwithstanding.
  EXPECT_EQ(fast.now(), 99u);
}

// -------------------------------------------------- LambdaComponent API --

TEST(LambdaComponent, PhaseIndexedCallbacksFireInPhaseOrder) {
  Engine engine(EngineConfig{.fast_path = false});
  std::vector<int> order;
  auto multi = std::make_shared<sim::LambdaComponent>("multi",
                                                      sim::kSharedDomain);
  multi->on(Phase::Commit, [&order](Cycle) { order.push_back(3); });
  multi->on(Phase::Issue, [&order](Cycle) { order.push_back(0); });
  multi->on(Phase::Issue, [&order](Cycle) { order.push_back(1); });
  multi->on(Phase::Network, [&order](Cycle) { order.push_back(2); });
  engine.add(std::move(multi));
  engine.run_for(2);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 0, 1, 2, 3}));
}

// ----------------------------------------- hierarchical cross-product --

struct HierRun {
  std::uint64_t completed = 0;
  std::uint64_t in_flight = 0;
  double mean_latency = 0.0;
  std::uint64_t latency_count = 0;
  std::vector<std::pair<std::string, std::uint64_t>> machine_counters;
  std::vector<std::pair<std::string, std::uint64_t>> mem_counters;
  bool coupling_ok = false;
  Cycle end_cycle = 0;

  bool operator==(const HierRun&) const = default;
};

// One full machine build + run.  `fault_plan` empty = healthy machine.
HierRun run_hier(unsigned threads, bool fast, Cycle span,
                 const std::string& fault_plan, bool audit = false,
                 bool barrier = false) {
  constexpr Cycle kCycles = 3000;
  auto engine = Engine::make(
      EngineConfig{.num_threads = threads, .fast_path = fast,
                   .max_span = span});

  cache::HierarchicalCfm sys({.clusters = 8, .procs_per_cluster = 8});
  std::optional<sim::FaultInjector> injector;
  if (!fault_plan.empty()) {
    injector.emplace(sim::FaultPlan::parse(fault_plan));
    sys.set_fault_injector(*injector, /*spare_banks=*/1);
  }
  sim::ConflictAuditor auditor;
  if (audit) sys.set_audit(auditor);

  workload::HierDriver driver(
      "test.think_driver", *engine, sys,
      {.think_min = 4, .think_max = 120, .write_fraction = 0.35,
       .shared_fraction = 0.25, .barrier = barrier},
      /*seed=*/0x5eedULL, engine->shard(sim::kSharedDomain));
  sys.attach(*engine);
  engine->run_for(kCycles);

  HierRun out;
  out.completed = driver.completed();
  out.in_flight = driver.in_flight();
  const auto& shard = engine->shard(sim::kSharedDomain);
  const auto it = shard.running.find("hier.access_time");
  if (it != shard.running.end()) {
    out.mean_latency = it->second.mean();
    out.latency_count = it->second.count();
  }
  for (const auto& [k, v] : sys.counters().all()) {
    out.machine_counters.emplace_back(k, v);
  }
  for (std::uint32_t c = 0; c < 8; ++c) {
    for (const auto& [k, v] : sys.cluster_memory(c).counters().all()) {
      out.mem_counters.emplace_back("c" + std::to_string(c) + "." + k, v);
    }
  }
  for (const auto& [k, v] : sys.global_memory().counters().all()) {
    out.mem_counters.emplace_back("g." + k, v);
  }
  out.coupling_ok = sys.check_state_coupling();
  out.end_cycle = engine->now();
  if (audit) EXPECT_EQ(auditor.violations(), 0u);
  return out;
}

// ISSUE acceptance: every engine/fast-path/span combination is bit-exact
// with the per-cycle serial reference, healthy machine.
TEST(FastPathCrossProduct, HealthyMachineIsBitExactEverywhere) {
  const HierRun ref = run_hier(1, /*fast=*/false, 1, "");
  ASSERT_GT(ref.completed, 500u);
  ASSERT_TRUE(ref.coupling_ok);

  for (const Cycle span : {Cycle{1}, Cycle{7}, Cycle{64}}) {
    EXPECT_EQ(run_hier(1, true, span, ""), ref) << "serial span " << span;
    EXPECT_EQ(run_hier(4, true, span, ""), ref) << "parallel span " << span;
  }
  EXPECT_EQ(run_hier(4, false, 1, ""), ref) << "parallel reference";
}

// ...and with bank_dead + brownout faults injected at both levels.
TEST(FastPathCrossProduct, FaultedMachineIsBitExactEverywhere) {
  const std::string plan =
      "bank_dead@400+900:module=0,bank=1;brownout@1400+150:module=0";
  const HierRun ref = run_hier(1, /*fast=*/false, 1, plan);
  ASSERT_GT(ref.completed, 200u);
  ASSERT_TRUE(ref.coupling_ok);

  for (const Cycle span : {Cycle{1}, Cycle{7}, Cycle{64}}) {
    EXPECT_EQ(run_hier(1, true, span, plan), ref) << "serial span " << span;
    EXPECT_EQ(run_hier(4, true, span, plan), ref) << "parallel span " << span;
  }
}

// The bulk-synchronous (BSP superstep) driver mode — the shape the CI
// throughput gate benchmarks — is bit-exact across the same grid.
TEST(FastPathCrossProduct, BarrierWorkloadIsBitExactEverywhere) {
  const HierRun ref =
      run_hier(1, false, 1, "", /*audit=*/false, /*barrier=*/true);
  ASSERT_GT(ref.completed, 300u);
  for (const Cycle span : {Cycle{1}, Cycle{64}}) {
    EXPECT_EQ(run_hier(1, true, span, "", false, true), ref)
        << "serial span " << span;
    EXPECT_EQ(run_hier(4, true, span, "", false, true), ref)
        << "parallel span " << span;
  }
}

// The §9 conflict auditor keeps working on the fast path: zero
// violations, and auditing does not change results.
TEST(FastPathCrossProduct, AuditedFastRunMatchesAndStaysClean) {
  const HierRun ref = run_hier(1, false, 1, "");
  EXPECT_EQ(run_hier(1, true, 64, "", /*audit=*/true), ref);
  EXPECT_EQ(run_hier(4, true, 64, "", /*audit=*/true), ref);
}

// The think-time workload really exercises the skip machinery: on the
// fast path the driver is invoked far less often than once per cycle
// while producing identical work.  (Guards against silently losing the
// speedup, without wall-clock flakiness.)
TEST(FastPath, ThinkTimeWorkloadActuallySkipsWork) {
  constexpr Cycle kCycles = 3000;

  // A sparse machine: few processors with long think times, so the driver
  // is provably idle most cycles and the skip ratio is unambiguous.
  auto run = [&](bool fast) {
    Engine engine(EngineConfig{.fast_path = fast, .max_span = 64});
    cache::HierarchicalCfm sys({.clusters = 2, .procs_per_cluster = 2});
    workload::HierDriver driver("test.think_driver", engine, sys,
                                {.think_min = 64, .think_max = 400},
                                0x5eedULL, engine.shard(sim::kSharedDomain));
    sys.attach(engine);
    engine.run_for(kCycles);
    EXPECT_EQ(engine.now(), kCycles);
    return std::pair{driver.completed(), driver.ticks()};
  };

  const auto [ref_completed, ref_ticks] = run(false);
  const auto [fast_completed, fast_ticks] = run(true);
  EXPECT_EQ(ref_completed, fast_completed);
  EXPECT_GT(fast_completed, 30u);
  EXPECT_EQ(ref_ticks, kCycles);       // reference: every cycle
  EXPECT_LT(fast_ticks, kCycles / 2);  // fast: long think stretches skipped
}

}  // namespace
