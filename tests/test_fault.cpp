// Tests for the fault-injection & graceful-degradation subsystem:
// FaultPlan grammar, injector windows, CfmMemory's spare-bank remap and
// bounded-latency contract (serial and 4-thread ParallelEngine), the
// closed-loop survivorship-bias accounting, the Uniform[1, beta] back-off
// draw, and the assert->invalid_argument guard conversions.
#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

#include "cfm/cfm_memory.hpp"
#include "mem/conventional.hpp"
#include "net/circuit_omega.hpp"
#include "net/omega.hpp"
#include "net/partial_omega.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/rng.hpp"
#include "workload/access_gen.hpp"

namespace {

using namespace cfm;
using sim::FaultInjector;
using sim::FaultKind;
using sim::FaultPlan;
using sim::FaultSpec;

// ------------------------------------------------------------ grammar --

TEST(FaultPlan, ParsesEveryKind) {
  const auto plan = FaultPlan::parse(
      "bank_dead@100+500:module=1,bank=3;"
      "brownout@200+50:module=0;"
      "omega_link@10:stage=2,link=5;"
      "drop@0:prob=0.25");
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan.specs()[0].kind, FaultKind::BankDead);
  EXPECT_EQ(plan.specs()[0].at, 100u);
  EXPECT_EQ(plan.specs()[0].duration, 500u);
  EXPECT_EQ(plan.specs()[0].module, 1u);
  EXPECT_EQ(plan.specs()[0].bank, 3u);
  EXPECT_EQ(plan.specs()[1].kind, FaultKind::ModuleBrownout);
  EXPECT_EQ(plan.specs()[2].kind, FaultKind::OmegaLink);
  EXPECT_EQ(plan.specs()[2].stage, 2u);
  EXPECT_EQ(plan.specs()[2].link, 5u);
  EXPECT_EQ(plan.specs()[3].kind, FaultKind::MessageDrop);
  EXPECT_DOUBLE_EQ(plan.specs()[3].probability, 0.25);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const char* text =
      "bank_dead@100+500:module=1,bank=3;brownout@200+50:module=0;"
      "drop@0:prob=0.25";
  const auto plan = FaultPlan::parse(text);
  const auto again = FaultPlan::parse(plan.to_string());
  ASSERT_EQ(again.size(), plan.size());
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(again.specs()[i].kind, plan.specs()[i].kind) << i;
    EXPECT_EQ(again.specs()[i].at, plan.specs()[i].at) << i;
    EXPECT_EQ(again.specs()[i].duration, plan.specs()[i].duration) << i;
    EXPECT_EQ(again.specs()[i].module, plan.specs()[i].module) << i;
    EXPECT_EQ(again.specs()[i].bank, plan.specs()[i].bank) << i;
    EXPECT_DOUBLE_EQ(again.specs()[i].probability,
                     plan.specs()[i].probability)
        << i;
  }
}

TEST(FaultPlan, MalformedTextThrows) {
  // A typo must not silently run a clean machine.
  EXPECT_THROW((void)FaultPlan::parse("bank_dead"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("nonsense@10"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bank_dead@"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bank_dead@abc"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bank_dead@5:bogus=1"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop@0:prob=1.5"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop@0:prob=0"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse(""), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse(";"), std::invalid_argument);
}

TEST(FaultPlan, ValidateBanksRejectsUnprovisionedTargets) {
  // A bank_dead aimed past the backend's provisioning would never fire —
  // the scan only covers provisioned banks — so the plan must be rejected
  // up front instead of silently running a clean machine.
  const auto plan =
      FaultPlan::parse("bank_dead@100:module=0,bank=11;brownout@200:module=9");
  EXPECT_NO_THROW(plan.validate_banks(12, "cfm memory"));   // 11 < 12
  EXPECT_THROW(plan.validate_banks(11, "cfm memory"),       // 11 >= 11
               std::invalid_argument);
  try {
    plan.validate_banks(4, "coded memory (data + parity banks)");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bank 11"), std::string::npos) << what;
    EXPECT_NE(what.find("coded memory"), std::string::npos) << what;
    EXPECT_NE(what.find("silently inert"), std::string::npos) << what;
  }
  // Non-bank faults carry no bank target; they never trip the check.
  EXPECT_NO_THROW(
      FaultPlan::parse("brownout@10:module=3;drop@0:prob=0.5")
          .validate_banks(1, "anything"));
}

TEST(FaultInjector, QueriesHonorTheFaultWindow) {
  FaultPlan plan;
  FaultSpec dead;
  dead.kind = FaultKind::BankDead;
  dead.at = 100;
  dead.duration = 50;
  dead.module = 0;
  dead.bank = 3;
  plan.add(dead);
  const FaultInjector inj(plan);
  EXPECT_FALSE(inj.bank_dead(99, 0, 3));
  EXPECT_TRUE(inj.bank_dead(100, 0, 3));
  EXPECT_TRUE(inj.bank_dead(149, 0, 3));
  EXPECT_FALSE(inj.bank_dead(150, 0, 3));
  EXPECT_FALSE(inj.bank_dead(120, 0, 4));  // other bank
  EXPECT_FALSE(inj.bank_dead(120, 1, 3));  // other module
  EXPECT_TRUE(inj.any_active(120));
  EXPECT_FALSE(inj.any_active(200));
}

// ---------------------------------------------- CFM degraded operation --

// Property: with one bank stuck dead and a spare provisioned, every
// issued access completes, conflict freedom holds (zero genuine
// violations) and the injected fault is classified separately.
TEST(CfmDegradation, DeadBankWithSpareCompletesEveryAccess) {
  const auto cfg = core::CfmConfig::make(8, 2);
  core::CfmMemory mem(cfg);
  sim::ConflictAuditor auditor;
  mem.set_audit(auditor);
  FaultInjector inj(FaultPlan::parse("bank_dead@100:module=0,bank=3"));
  mem.set_fault_injector(inj, /*spare_banks=*/1);

  sim::Rng rng(99);
  struct Slot {
    core::CfmMemory::OpToken op = core::CfmMemory::kNoOp;
    sim::Cycle issued = 0;
  };
  std::array<Slot, 8> slots;
  std::uint64_t completed = 0;
  sim::Cycle worst = 0;
  for (sim::Cycle now = 0; now < 4000; ++now) {
    for (sim::ProcessorId p = 0; p < 8; ++p) {
      auto& s = slots[p];
      if (s.op != core::CfmMemory::kNoOp) {
        if (auto r = mem.take_result(s.op)) {
          ASSERT_EQ(r->status, core::OpStatus::Completed)
              << "access aborted at " << r->completed;
          worst = std::max(worst, r->completed - r->issued);
          ++completed;
          s.op = core::CfmMemory::kNoOp;
        }
      }
      if (s.op == core::CfmMemory::kNoOp && rng.chance(0.3)) {
        s.issued = now;
        s.op = mem.issue(now, p, core::BlockOpKind::Read, 7 + p * 131);
      }
    }
    mem.tick(now);
  }

  EXPECT_GT(completed, 500u);
  EXPECT_EQ(mem.counters().get("bank_remaps"), 1u);
  EXPECT_EQ(auditor.violations(), 0u);
  EXPECT_GE(auditor.injected_detected(), 1u);
  // Bounded latency: the remap costs at most one restarted tour.
  const auto beta = cfg.block_access_time();
  EXPECT_LE(worst, sim::Cycle{3} * beta);
  // Ops interrupted by the failure recovered (stat only counts them).
  EXPECT_LE(mem.fault_recovery().max(), 3.0 * beta);
}

// The same property must hold when the memory ticks inside a 4-thread
// ParallelEngine: the injector's const queries are the only cross-domain
// surface, and serial/parallel runs stay bit-identical.
TEST(CfmDegradation, ParallelEngineMatchesSerialUnderFaults) {
  struct Run {
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    double mean = 0.0;
    std::uint64_t violations = 0;
  };
  auto run = [](std::unique_ptr<sim::Engine> engine) {
    core::CfmMemory mem(core::CfmConfig::make(8, 2));
    sim::ConflictAuditor auditor;
    mem.set_audit(auditor);
    FaultInjector inj(
        FaultPlan::parse("bank_dead@500:module=0,bank=5;"
                         "brownout@3000+60:module=0"));
    mem.set_fault_injector(inj, 1);
    const auto domain = engine->allocate_domain();
    mem.attach(*engine, domain);
    workload::AccessDriver driver("fault.driver", domain, mem, 0.25, 4321,
                                  engine->shard(domain));
    engine->add(driver);
    engine->run_for(8000);
    Run out;
    out.completed = driver.completed();
    out.failed = driver.failed();
    const auto& shard = engine->shard(domain);
    if (const auto it = shard.running.find("access_time");
        it != shard.running.end()) {
      out.mean = it->second.mean();
    }
    out.violations = auditor.violations();
    return out;
  };

  const auto serial = run(sim::Engine::make(sim::EngineConfig{1}));
  const auto parallel = run(sim::Engine::make(sim::EngineConfig{4}));
  EXPECT_GT(serial.completed, 1000u);
  EXPECT_EQ(serial.failed, 0u);
  EXPECT_EQ(serial.violations, 0u);
  EXPECT_EQ(parallel.completed, serial.completed);
  EXPECT_EQ(parallel.failed, serial.failed);
  EXPECT_DOUBLE_EQ(parallel.mean, serial.mean);
  EXPECT_EQ(parallel.violations, serial.violations);
}

// Without a spare the machine halts on the dead bank; the watchdog must
// still answer every access within the fault timeout (status Aborted, so
// the caller can retry or fail over).
TEST(CfmDegradation, UnmappedFaultKeepsLatencyBounded) {
  const auto cfg = core::CfmConfig::make(4, 2);
  core::CfmMemory mem(cfg);
  FaultInjector inj(FaultPlan::parse("bank_dead@50:module=0,bank=2"));
  const sim::Cycle timeout = 64;
  mem.set_fault_injector(inj, /*spare_banks=*/0, timeout);

  const auto op = mem.issue(60, 0, core::BlockOpKind::Read, 42);
  sim::Cycle now = 60;
  std::optional<core::BlockOpResult> res;
  while (now < 60 + 10 * timeout) {
    mem.tick(now++);
    if ((res = mem.take_result(op))) break;
  }
  ASSERT_TRUE(res.has_value()) << "access never resolved";
  EXPECT_NE(res->status, core::OpStatus::Completed);
  EXPECT_LE(res->completed - res->issued,
            timeout + cfg.block_access_time() + 1);
  EXPECT_GE(mem.counters().get("fault_aborts"), 1u);
  EXPECT_GE(mem.counters().get("bank_failures_unmapped"), 1u);
}

// ------------------------------------- closed-loop measurement honesty --

TEST(ClosedLoop, ShortBudgetReportsUnfinishedAccesses) {
  // One module, saturating rate, tiny budget: most processors are still
  // retrying when the run is cut off.  Those accesses are excluded from
  // the mean (survivorship), so the result must disclose them.
  const auto r = workload::measure_conventional(8, 1, 17, 0.9, 60, 13);
  EXPECT_GT(r.unfinished, 0u);
  // A long budget drains the backlog at a modest rate: near-zero leftover
  // relative to completions.
  const auto big = workload::measure_conventional(8, 8, 17, 0.01, 200000, 13);
  EXPECT_GT(big.completed, 1000u);
  EXPECT_LE(big.unfinished, 8u);  // at most one in-flight access per proc
}

TEST(ClosedLoop, CfmMeasurementReportsUnfinished) {
  const auto r = workload::measure_cfm(8, 2, 0.9, 300, 17);
  // Closed loop: whatever is still in flight is at most one per
  // processor, and it is reported rather than silently dropped.
  EXPECT_LE(r.unfinished, 8u);
  EXPECT_EQ(r.failed, 0u);
  // A clean CFM never conflicts and never faults, so nothing — finished
  // or in flight — can have retried.
  EXPECT_EQ(r.unfinished_retries, 0u);
  EXPECT_EQ(r.mean_retries, 0.0);
}

TEST(ClosedLoop, RetryMeanIncludesCutOffAccesses) {
  // Two processors fight over one module and the budget expires while the
  // loser is still backing off: nothing completes after warmup, yet the
  // machine spent the whole run conflicting.  The old finished-only
  // statistic reported mean_retries == 0 here — the cutoff discards
  // exactly the most-retried accesses (survivorship bias, the retry-side
  // twin of the `unfinished` completion fix).  Folded accounting must
  // both disclose the in-flight retries and include them in the mean.
  const auto r = workload::measure_conventional(2, 1, 32, 0.5, 30, 7);
  EXPECT_EQ(r.completed, 0u);
  EXPECT_GT(r.unfinished, 0u);
  EXPECT_GT(r.unfinished_retries, 0u);
  EXPECT_GT(r.mean_retries, 0.0);
}

TEST(ClosedLoop, CfmRetryMeanCountsWholePopulation) {
  // Under a dead bank without spares the CFM driver retries off fault
  // aborts.  mean_retries must average the retry events over the whole
  // issued population — completed, failed, *and* still in flight — so
  // a cutoff mid-retry cannot deflate it.
  FaultInjector inj(FaultPlan::parse("bank_dead@100:module=0,bank=1"));
  sim::CounterSet counters;
  workload::CfmRunHooks hooks;
  hooks.injector = &inj;
  hooks.spare_banks = 0;
  hooks.counters_out = &counters;
  const auto r =
      workload::measure_cfm_instrumented(4, 2, 0.5, 2000, 21, hooks);
  const auto retried = counters.get("ops_retried");
  ASSERT_GT(retried, 0u);
  const auto population = r.completed + r.failed + r.unfinished;
  ASSERT_GT(population, 0u);
  EXPECT_DOUBLE_EQ(r.mean_retries, static_cast<double>(retried) /
                                       static_cast<double>(population));
}

// --------------------------------------------- Uniform[1, beta] draws --

TEST(Rng, BetweenIsInclusiveOnBothEnds) {
  // §3.4.1's back-off is Uniform[1, beta]: rng.between(1, beta) must be
  // able to return both endpoints and nothing outside them.
  sim::Rng rng(7);
  constexpr std::uint64_t kBeta = 5;
  std::array<std::uint64_t, kBeta + 1> hits{};
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.between(1, kBeta);
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, kBeta);
    ++hits[v];
  }
  for (std::uint64_t v = 1; v <= kBeta; ++v) {
    // Each value should land ~4000 times; even a loose bound catches an
    // off-by-one that would zero an endpoint.
    EXPECT_GT(hits[v], 3000u) << "value " << v;
    EXPECT_LT(hits[v], 5000u) << "value " << v;
  }
}

// ------------------------------- guard conversions (release-safe APIs) --

TEST(InputValidation, OmegaRouteRejectsOutOfRangePorts) {
  const net::OmegaTopology topo(8);
  EXPECT_THROW((void)topo.route(8, 0), std::invalid_argument);
  EXPECT_THROW((void)topo.route(0, 9), std::invalid_argument);
}

TEST(InputValidation, OmegaPermutationScheduleRejectsWrongSize) {
  const net::OmegaTopology topo(8);
  const std::vector<net::Port> wrong(4, 0);
  EXPECT_THROW((void)net::SyncOmega::schedule_for_permutation(topo, wrong),
               std::invalid_argument);
}

TEST(InputValidation, PartialFabricRejectsBadConfigAndArgs) {
  EXPECT_THROW(net::PartialCfmFabric(8, 3, 17), std::invalid_argument);
  EXPECT_THROW(net::PartialCfmFabric(8, 4, 0), std::invalid_argument);
  net::PartialCfmFabric fabric(8, 4, 17);
  EXPECT_THROW((void)fabric.try_access(8, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)fabric.try_access(0, 4, 0), std::invalid_argument);
}

TEST(InputValidation, BufferedOmegaRejectsZeroCapacityOrService) {
  EXPECT_THROW(net::BufferedOmega(8, 0, 1), std::invalid_argument);
  EXPECT_THROW(net::BufferedOmega(8, 4, 0), std::invalid_argument);
}

TEST(InputValidation, ConventionalMemoryRejectsZeroModulesOrBeta) {
  EXPECT_THROW(mem::ConventionalMemory(0, 17), std::invalid_argument);
  EXPECT_THROW(mem::ConventionalMemory(8, 0), std::invalid_argument);
}

}  // namespace
