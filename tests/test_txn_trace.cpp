// The transaction tracer: lifecycle records, the attribution invariant
// (per-phase cycle sums equal end-to-end latency, by construction of
// end()'s stall folding), queue hints, the bounded-capacity drop path,
// and the three exports (report section, span samples, Chrome trace).
#include <gtest/gtest.h>

#include <vector>

#include "cfm/cfm_memory.hpp"
#include "sim/report.hpp"
#include "sim/rng.hpp"
#include "sim/txn_trace.hpp"

namespace {

using namespace cfm;
using cfm::sim::Cycle;
using cfm::sim::TxnPhase;
using cfm::sim::TxnTracer;

// ---- direct API --------------------------------------------------------

TEST(TxnTrace, LifecycleAndAttributionFolding) {
  TxnTracer tracer;
  const auto unit = tracer.add_unit("u");
  const auto id = tracer.begin(unit, 10, 2, "read", 7);
  ASSERT_NE(id, sim::kNoTxn);
  tracer.span(id, TxnPhase::Bank, 10, 14, 3);
  tracer.span(id, TxnPhase::Drain, 14, 15);
  tracer.end(id, 20, true);

  const auto* rec = tracer.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->proc, 2u);
  EXPECT_EQ(rec->kind, "read");
  EXPECT_EQ(rec->offset, 7u);
  EXPECT_EQ(rec->enqueued, 10u);  // no queue hint: enqueued == issued
  EXPECT_EQ(rec->completed, 20u);
  EXPECT_TRUE(rec->ok);
  ASSERT_EQ(rec->spans.size(), 2u);
  EXPECT_EQ(rec->spans[0].detail, 3u);
  // 4 bank + 1 drain cycles claimed; end() folds the missing 5 into Stall.
  EXPECT_EQ(rec->attr[static_cast<int>(TxnPhase::Bank)], 4u);
  EXPECT_EQ(rec->attr[static_cast<int>(TxnPhase::Drain)], 1u);
  EXPECT_EQ(rec->attr[static_cast<int>(TxnPhase::Stall)], 5u);
  EXPECT_EQ(rec->attr_total(), rec->latency());
  EXPECT_EQ(tracer.started(), 1u);
  EXPECT_EQ(tracer.completed(), 1u);
}

TEST(TxnTrace, QueueHintBecomesQueueSpan) {
  TxnTracer tracer;
  const auto unit = tracer.add_unit("u");
  tracer.queued_since(unit, 0, 4);
  const auto id = tracer.begin(unit, 10, 0, "read", 1);
  tracer.end(id, 12, true);

  const auto* rec = tracer.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->enqueued, 4u);
  EXPECT_EQ(rec->issued, 10u);
  ASSERT_FALSE(rec->spans.empty());
  EXPECT_EQ(rec->spans[0].phase, TxnPhase::Queue);
  EXPECT_EQ(rec->spans[0].begin, 4u);
  EXPECT_EQ(rec->spans[0].end, 10u);
  EXPECT_EQ(rec->attr[static_cast<int>(TxnPhase::Queue)], 6u);
  EXPECT_EQ(rec->attr_total(), rec->latency());

  // The hint was consumed: the next begin() is unqueued again.
  const auto id2 = tracer.begin(unit, 20, 0, "read", 1);
  const auto* rec2 = tracer.find(id2);
  ASSERT_NE(rec2, nullptr);
  EXPECT_EQ(rec2->enqueued, 20u);
}

TEST(TxnTrace, AbortedAndRestartedTransactions) {
  TxnTracer tracer;
  const auto unit = tracer.add_unit("u");
  const auto id = tracer.begin(unit, 0, 0, "swap", 9);
  tracer.restart(id, 5, "write_overlap");
  tracer.restart(id, 9, "write_overlap");
  tracer.end(id, 12, false);

  const auto* rec = tracer.find(id);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->ok);
  EXPECT_EQ(rec->restarts, 2u);
  EXPECT_EQ(rec->events.size(), 2u);
  EXPECT_EQ(tracer.aborted(), 1u);
  EXPECT_EQ(tracer.completed(), 0u);
}

TEST(TxnTrace, CapacityCapDropsButStillCounts) {
  TxnTracer tracer;
  tracer.set_capacity(2);
  const auto unit = tracer.add_unit("u");
  EXPECT_NE(tracer.begin(unit, 0, 0, "read", 0), sim::kNoTxn);
  EXPECT_NE(tracer.begin(unit, 1, 1, "read", 1), sim::kNoTxn);
  const auto dropped = tracer.begin(unit, 2, 2, "read", 2);
  EXPECT_EQ(dropped, sim::kNoTxn);
  EXPECT_EQ(tracer.started(), 3u);
  EXPECT_EQ(tracer.dropped(), 1u);
  // All mutators must no-op on kNoTxn.
  tracer.span(dropped, TxnPhase::Bank, 2, 3);
  tracer.restart(dropped, 3, "x");
  tracer.end(dropped, 4, true);
  EXPECT_EQ(tracer.completed(), 0u);
}

// ---- CfmMemory integration ---------------------------------------------

TEST(TxnTrace, CfmReadProducesOneBankSpanPerBank) {
  core::CfmMemory mem(core::CfmConfig::make(4));  // b = 4, c = 1
  TxnTracer tracer;
  mem.set_txn_trace(tracer);
  const auto banks = mem.config().banks;
  const auto beta = mem.config().block_access_time();

  (void)mem.issue(0, 0, core::BlockOpKind::Read, 11);
  Cycle t = 0;
  for (; t < 4 * banks; ++t) mem.tick(t);

  ASSERT_EQ(tracer.completed(), 1u);
  const auto doc = tracer.to_json();
  const auto& spans = doc.at("spans").as_array();
  ASSERT_FALSE(spans.empty());
  const auto& first = spans.front();
  EXPECT_EQ(first.at("kind").as_string(), "read");
  std::uint64_t bank_spans = 0;
  for (const auto& s : first.at("spans").as_array()) {
    if (s.at("phase").as_string() == "bank") ++bank_spans;
  }
  EXPECT_EQ(bank_spans, banks);
  EXPECT_EQ(first.at("completed").as_uint() - first.at("enqueued").as_uint(),
            beta);
}

TEST(TxnTrace, CfmDrainSpanAppearsWhenBankCycleExceedsOne) {
  core::CfmMemory mem(core::CfmConfig::make(4, 2));  // b = 8, c = 2
  TxnTracer tracer;
  mem.set_txn_trace(tracer);
  const auto banks = mem.config().banks;

  (void)mem.issue(0, 1, core::BlockOpKind::Read, 3);
  Cycle t = 0;
  for (; t < 6 * banks; ++t) mem.tick(t);

  ASSERT_EQ(tracer.completed(), 1u);
  const auto doc = tracer.to_json();
  const auto& first = doc.at("spans").as_array().front();
  bool has_drain = false;
  for (const auto& s : first.at("spans").as_array()) {
    if (s.at("phase").as_string() == "drain") has_drain = true;
  }
  EXPECT_TRUE(has_drain) << "c = 2 must leave a c-1 cycle drain span";
}

TEST(TxnTrace, CfmAttributionSumsEqualLatencyUnderChaos) {
  // Same-block chaos: restarts, aborts, swaps — the invariant must hold
  // for every completed record regardless.
  core::CfmMemory mem(core::CfmConfig::make(8),
                      core::ConsistencyPolicy::EarliestWins);
  TxnTracer tracer;
  mem.set_txn_trace(tracer);
  const auto banks = mem.config().banks;
  sim::Rng rng(77);
  std::vector<core::CfmMemory::OpToken> live(8, core::CfmMemory::kNoOp);
  Cycle t = 0;
  for (; t < 3000; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      if (live[p] != core::CfmMemory::kNoOp &&
          mem.take_result(live[p]).has_value()) {
        live[p] = core::CfmMemory::kNoOp;
      }
      if (live[p] == core::CfmMemory::kNoOp && rng.chance(0.4)) {
        const double pick = rng.uniform();
        const auto kind = pick < 0.4   ? core::BlockOpKind::Read
                          : pick < 0.8 ? core::BlockOpKind::Write
                                       : core::BlockOpKind::Swap;
        live[p] = kind == core::BlockOpKind::Read
                      ? mem.issue(t, p, kind, 42)
                      : mem.issue(t, p, kind, 42,
                                  std::vector<sim::Word>(banks, t));
      }
    }
    mem.tick(t);
  }
  EXPECT_GT(tracer.completed(), 100u);

  const auto doc = tracer.to_json(1u << 20);
  std::uint64_t checked = 0;
  for (const auto& rec : doc.at("spans").as_array()) {
    if (!rec.at("ok").as_bool()) continue;
    std::uint64_t attr_sum = 0;
    for (const auto& [phase, cycles] : rec.at("attr").as_object()) {
      attr_sum += cycles.as_uint();
    }
    const auto latency =
        rec.at("completed").as_uint() - rec.at("enqueued").as_uint();
    ASSERT_EQ(attr_sum, latency) << "attribution leak in " << rec.dump();
    ++checked;
  }
  EXPECT_GT(checked, 100u);
  EXPECT_FALSE(doc.at("spans_truncated").as_bool());
}

// ---- exports -----------------------------------------------------------

TEST(TxnTrace, ReportSectionAndChromeExport) {
  core::CfmMemory mem(core::CfmConfig::make(4));
  TxnTracer tracer;
  mem.set_txn_trace(tracer);
  for (std::uint32_t p = 0; p < 4; ++p) {
    (void)mem.issue(0, p, core::BlockOpKind::Read, 100 + p);
  }
  Cycle t = 0;
  for (; t < 32; ++t) mem.tick(t);
  ASSERT_EQ(tracer.completed(), 4u);

  sim::Report report("txn_test");
  tracer.to_report(report);
  const auto doc = sim::Json::parse(report.to_json().dump());
  const auto& section = doc.at("txn_trace");
  EXPECT_EQ(section.at("started").as_uint(), 4u);
  EXPECT_EQ(section.at("completed").as_uint(), 4u);
  EXPECT_EQ(section.at("dropped").as_uint(), 0u);
  EXPECT_TRUE(section.at("attribution").is_object());
  EXPECT_TRUE(section.at("latency").is_object());
  EXPECT_TRUE(section.at("units").at("cfm").is_object());

  // Chrome export: per-span "X" events plus a flow arrow per txn, on one
  // lane per (unit, proc).
  sim::ChromeTrace chrome;
  tracer.to_chrome(chrome);
  const auto events = chrome.to_json();
  ASSERT_TRUE(events.is_array());
  std::uint64_t durations = 0;
  std::uint64_t flows = 0;
  for (const auto& e : events.as_array()) {
    const auto& ph = e.at("ph").as_string();
    if (ph == "X") ++durations;
    if (ph == "s" || ph == "f") ++flows;
  }
  EXPECT_GE(durations, 4u * 4u);  // >= banks spans per read
  EXPECT_GE(flows, 2u * 4u);      // begin + end arrow per txn
}

TEST(TxnTrace, SpanSampleTruncationIsFlagged) {
  TxnTracer tracer;
  const auto unit = tracer.add_unit("u");
  for (Cycle i = 0; i < 10; ++i) {
    const auto id = tracer.begin(unit, i, 0, "read", i);
    tracer.end(id, i + 1, true);
  }
  const auto doc = tracer.to_json(/*max_span_records=*/3);
  EXPECT_EQ(doc.at("spans").as_array().size(), 3u);
  EXPECT_TRUE(doc.at("spans_truncated").as_bool());
}

}  // namespace
