// Tests for the contended baselines: buffered omega (tree saturation) and
// circuit-switched omega (abort-and-retry).
#include <gtest/gtest.h>

#include "net/circuit_omega.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cfm::net;
using cfm::sim::Cycle;

TEST(BufferedOmega, DeliversASinglePacket) {
  BufferedOmega net(8, 4);
  ASSERT_TRUE(net.try_inject(0, 3, 6));
  bool delivered = false;
  for (Cycle t = 0; t < 20 && !delivered; ++t) {
    net.tick(t);
    for (const auto& p : net.delivered_last_tick()) {
      EXPECT_EQ(p.src, 3u);
      EXPECT_EQ(p.dst, 6u);
      delivered = true;
    }
  }
  EXPECT_TRUE(delivered);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(BufferedOmega, LatencyIsStageCountUnderNoLoad) {
  BufferedOmega net(8, 4);
  ASSERT_TRUE(net.try_inject(0, 0, 5));
  Cycle delivered_at = 0;
  for (Cycle t = 0; t < 20 && delivered_at == 0; ++t) {
    net.tick(t);
    if (!net.delivered_last_tick().empty()) delivered_at = t;
  }
  // 3 stages + delivery step: a handful of cycles, deterministic.
  EXPECT_GT(delivered_at, 0u);
  EXPECT_LE(delivered_at, 5u);
}

TEST(BufferedOmega, InjectionSlotBackpressure) {
  BufferedOmega net(4, 1);
  EXPECT_TRUE(net.try_inject(0, 0, 1));
  // Same source, no tick in between: slot still occupied.
  EXPECT_FALSE(net.try_inject(0, 0, 2));
  EXPECT_EQ(net.rejected_count(), 1u);
}

TEST(BufferedOmega, AllPairsEventuallyDelivered) {
  BufferedOmega net(8, 2);
  cfm::sim::Rng rng(5);
  std::uint64_t wanted = 0;
  std::uint64_t got = 0;
  Cycle t = 0;
  for (; t < 500; ++t) {
    if (wanted < 100) {
      const auto src = static_cast<Port>(rng.below(8));
      const auto dst = static_cast<Port>(rng.below(8));
      if (net.try_inject(t, src, dst)) ++wanted;
    }
    net.tick(t);
    got += net.delivered_last_tick().size();
  }
  EXPECT_EQ(wanted, 100u);
  EXPECT_EQ(got, wanted);
}

TEST(BufferedOmega, HotSpotSaturatesTreeAndHurtsBackground) {
  // Fig 2.1: a hot sink backs queues up toward the sources, and the
  // *background* traffic (different sinks) slows down as a result.
  const std::uint32_t ports = 16;
  auto run = [&](double hot_fraction) {
    BufferedOmega net(ports, 2);
    cfm::sim::Rng rng(17);
    double background_latency = 0;
    std::uint64_t background_n = 0;
    for (Cycle t = 0; t < 4000; ++t) {
      for (Port s = 0; s < ports; ++s) {
        if (!rng.chance(0.4)) continue;
        const bool hot = rng.chance(hot_fraction);
        const auto dst =
            hot ? Port{0} : static_cast<Port>(rng.below(ports));
        net.try_inject(t, s, dst, hot);
      }
      net.tick(t);
      if (t < 500) continue;  // warm-up
      for (const auto& p : net.delivered_last_tick()) {
        if (!p.hot) {
          background_latency += static_cast<double>(p.delivered - p.injected);
          ++background_n;
        }
      }
    }
    return background_latency / static_cast<double>(background_n);
  };
  const double cold = run(0.0);
  const double hot = run(0.5);
  EXPECT_GT(hot, 2.0 * cold)
      << "tree saturation should degrade unrelated traffic";
}

TEST(BufferedOmega, CombiningMergesHotTraffic) {
  // §2.1.1: fetch-and-add combining — hot packets meeting in a switch
  // queue merge, and the delivered representatives account for every
  // absorbed request.  A slow sink forces queueing.
  BufferedOmega net(8, 4, /*sink_service=*/6, /*combining=*/true);
  std::uint32_t injected = 0;
  std::uint32_t served_requests = 0;
  for (Cycle t = 0; t < 200; ++t) {
    if (t < 48) {
      for (Port src = 0; src < 8; ++src) {
        if (net.try_inject(t, src, 0, /*hot=*/true)) ++injected;
      }
    }
    net.tick(t);
    for (const auto& p : net.delivered_last_tick()) {
      served_requests += p.combined;
    }
  }
  EXPECT_EQ(served_requests, injected) << "combined requests lost";
  EXPECT_GE(net.combined_count(), 1u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(BufferedOmega, CombiningDisabledNeverMerges) {
  BufferedOmega net(8, 4, 4, /*combining=*/false);
  ASSERT_TRUE(net.try_inject(0, 1, 0, true));
  ASSERT_TRUE(net.try_inject(0, 5, 0, true));
  for (Cycle t = 0; t < 40; ++t) net.tick(t);
  EXPECT_EQ(net.combined_count(), 0u);
}

TEST(BufferedOmega, CombiningRelievesTreeSaturation) {
  // The Ultracomputer argument: with combining, hot-spot back-pressure on
  // *background* traffic shrinks substantially.
  auto run = [&](bool combining) {
    BufferedOmega net(16, 2, 1, combining);
    cfm::sim::Rng rng(23);
    double background_latency = 0;
    std::uint64_t n = 0;
    for (Cycle t = 0; t < 6000; ++t) {
      for (Port s = 0; s < 16; ++s) {
        if (!rng.chance(0.4)) continue;
        const bool hot = rng.chance(0.5);
        const auto dst = hot ? Port{0} : static_cast<Port>(rng.below(16));
        net.try_inject(t, s, dst, hot);
      }
      net.tick(t);
      if (t < 600) continue;
      for (const auto& p : net.delivered_last_tick()) {
        if (!p.hot) {
          background_latency += static_cast<double>(p.delivered - p.injected);
          ++n;
        }
      }
    }
    return background_latency / static_cast<double>(n);
  };
  const double plain = run(false);
  const double combined = run(true);
  EXPECT_LT(combined, 0.7 * plain)
      << "combining should relieve background traffic";
}

TEST(CircuitOmega, GrantsAndHoldsPath) {
  CircuitOmega net(8);
  const auto done = net.try_circuit(0, 1, 5, 10);
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(*done, 10u);
  // Same path again while held: conflict.
  EXPECT_FALSE(net.try_circuit(3, 1, 5, 10).has_value());
  EXPECT_EQ(net.conflicts(), 1u);
  // After release it is grantable again.
  EXPECT_TRUE(net.try_circuit(10, 1, 5, 10).has_value());
}

TEST(CircuitOmega, DisjointPathsCoexist) {
  CircuitOmega net(8);
  // 0 -> 0 and 7 -> 7 share no line in an omega.
  ASSERT_TRUE(net.try_circuit(0, 0, 0, 10).has_value());
  EXPECT_TRUE(net.try_circuit(0, 7, 7, 10).has_value());
}

TEST(CircuitOmega, SinkConflictDetected) {
  CircuitOmega net(8);
  ASSERT_TRUE(net.try_circuit(0, 0, 3, 10).has_value());
  // Different source, same sink: blocked while the sink is held.
  EXPECT_FALSE(net.try_circuit(2, 4, 3, 10).has_value());
}

TEST(CircuitOmega, PathHoldingIncreasesConflictProbability) {
  // §2.1.2: circuit switching holds whole paths, so longer holds mean
  // more conflicts at equal load.
  auto conflict_rate = [&](std::uint32_t hold) {
    CircuitOmega net(16);
    cfm::sim::Rng rng(11);
    std::uint64_t tries = 0;
    for (Cycle t = 0; t < 4000; ++t) {
      const auto src = static_cast<Port>(rng.below(16));
      const auto dst = static_cast<Port>(rng.below(16));
      (void)net.try_circuit(t, src, dst, hold);
      ++tries;
    }
    return static_cast<double>(net.conflicts()) / static_cast<double>(tries);
  };
  EXPECT_LT(conflict_rate(2), conflict_rate(20));
}

}  // namespace
