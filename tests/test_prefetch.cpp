// Tests for the prefetching study (§3.1.4) and the multi-level latency
// scaling model (§5.4.3).
#include <gtest/gtest.h>

#include "analytic/latency.hpp"
#include "workload/prefetch.hpp"

namespace {

using namespace cfm;

TEST(Prefetch, DemandFetchPaysBetaPlusCompute) {
  // n=8, c=2 -> beta = 17.
  const auto r = workload::run_stream(8, 2, 10, 200, /*prefetch=*/false);
  EXPECT_NEAR(r.cycles_per_block, 27.0, 0.5);
  EXPECT_EQ(r.stall_cycles, 17u * 200u);
}

TEST(Prefetch, PrefetchHidesLatencyUnderComputeBound) {
  // compute > beta: stalls vanish (except the cold first block).
  const auto r = workload::run_stream(8, 2, 25, 200, /*prefetch=*/true);
  EXPECT_NEAR(r.cycles_per_block, 25.0, 0.5);
  EXPECT_LE(r.stall_cycles, 17u + 5u);
}

TEST(Prefetch, PrefetchBoundedByBetaWhenComputeSmall) {
  const auto r = workload::run_stream(8, 2, 5, 200, /*prefetch=*/true);
  // cost per block approaches max(beta, compute) = 17.
  EXPECT_NEAR(r.cycles_per_block, 17.0, 0.5);
  // residual stall per block = beta - compute = 12.
  EXPECT_NEAR(static_cast<double>(r.stall_cycles) / 200.0, 12.0, 0.5);
}

TEST(Prefetch, AlwaysAtLeastAsGoodAsDemand) {
  for (const std::uint32_t compute : {0u, 3u, 9u, 17u, 30u}) {
    const auto demand = workload::run_stream(4, 1, compute, 100, false);
    const auto pre = workload::run_stream(4, 1, compute, 100, true);
    EXPECT_LE(pre.total_cycles, demand.total_cycles) << "compute " << compute;
  }
}

TEST(HierarchyScaling, TwoLevelReducesToTable55) {
  const analytic::HierarchicalLatencyModel m{8, 2};
  EXPECT_EQ(m.multi_level_read(1), 9u);
  EXPECT_EQ(m.multi_level_read(2), 27u);
  EXPECT_EQ(m.multi_level_read(3), 45u);
}

TEST(HierarchyScaling, LatencyLogarithmicInProcessors) {
  const analytic::HierarchyScaling s{4, 8, 2};
  // Processors grow geometrically, latency arithmetically.
  for (std::uint32_t l = 1; l < 6; ++l) {
    EXPECT_EQ(s.processors(l + 1), 4 * s.processors(l));
    EXPECT_EQ(s.worst_read(l + 1) - s.worst_read(l), 2u * 9u);
  }
}

TEST(HierarchyScaling, DirtyChainGrowsLinearlyInLevels) {
  const analytic::HierarchicalLatencyModel m{8, 2};
  EXPECT_EQ(m.multi_level_dirty_read(2), 54u);  // the measured Table 5.5 value
  EXPECT_GT(m.multi_level_dirty_read(3), m.multi_level_dirty_read(2));
}

}  // namespace
