// Tests for the swap-based busy-waiting lock (§4.2.2).
#include <gtest/gtest.h>

#include <vector>

#include "cfm/atomic.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::Cycle;

TEST(LockClient, SingleClientAcquiresQuickly) {
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::EarliestWins);
  LockClient client(0, 3);
  client.acquire();
  Cycle t = 0;
  while (!client.holding() && t < 100) {
    client.tick(t, mem);
    mem.tick(t);
    ++t;
  }
  EXPECT_TRUE(client.holding());
  // One swap: 2 tours = 8 cycles, plus bookkeeping.
  EXPECT_LE(t, 16u);
}

TEST(LockClient, ReleaseFreesTheLock) {
  CfmMemory mem(CfmConfig::make(4, 1), ConsistencyPolicy::EarliestWins);
  LockClient a(0, 3);
  LockClient b(1, 3);
  a.acquire();
  Cycle t = 0;
  while (!a.holding() && t < 100) {
    a.tick(t, mem);
    mem.tick(t);
    ++t;
  }
  ASSERT_TRUE(a.holding());
  a.release();
  b.acquire();
  while (!b.holding() && t < 500) {
    a.tick(t, mem);
    b.tick(t, mem);
    mem.tick(t);
    ++t;
  }
  EXPECT_TRUE(b.holding());
  EXPECT_FALSE(a.holding());
}

class LockFarm : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LockFarm, MutualExclusionAndProgress) {
  const auto n = GetParam();
  CfmMemory mem(CfmConfig::make(n, 1), ConsistencyPolicy::EarliestWins);
  std::vector<LockClient> clients;
  clients.reserve(n);
  for (std::uint32_t p = 0; p < n; ++p) clients.emplace_back(p, 7);
  for (auto& c : clients) c.acquire();

  std::uint64_t acquisitions = 0;
  for (Cycle t = 0; t < 8000; ++t) {
    std::uint32_t holders = 0;
    for (auto& c : clients) {
      if (c.holding()) {
        ++holders;
        ++acquisitions;
        c.release();
      }
    }
    ASSERT_LE(holders, 1u) << "mutual exclusion violated at cycle " << t;
    for (auto& c : clients) {
      c.tick(t, mem);
      if (c.state() == LockClient::State::Idle) c.acquire();
    }
    mem.tick(t);
  }
  EXPECT_GT(acquisitions, 8000u / (6 * mem.config().banks))
      << "lock must keep moving";
  // Starvation-freedom: with >= 4 contenders the AT-space phases rotate
  // every round and nobody loses forever.  (With exactly 2 the fully
  // deterministic protocol can phase-lock so the bank-0-priority client
  // wins every round — a genuine property of the design; the paper's
  // optional retry delay would break the tie.)
  if (n >= 4) {
    for (auto& c : clients) {
      EXPECT_GT(c.acquisitions(), 0u) << "a contender starved";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Contenders, LockFarm,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(LockClient, WaitersDoNotSlowTheHolder) {
  // §4.2.2: "a processor repeatedly checking a lock does not delay the
  // swap operation issued by the process holding the lock" — and in CFM
  // the read-loop adds no memory contention at all.  Measure hand-off
  // cycles with 1 vs 7 read-looping waiters: the next acquisition after a
  // release must not degrade with waiter count.
  auto handoff = [](std::uint32_t n) {
    CfmMemory mem(CfmConfig::make(8, 1), ConsistencyPolicy::EarliestWins);
    std::vector<LockClient> clients;
    for (std::uint32_t p = 0; p < n; ++p) clients.emplace_back(p, 7);
    for (auto& c : clients) c.acquire();
    std::uint64_t acq = 0;
    Cycle t = 0;
    for (; t < 4000 && acq < 50; ++t) {
      for (auto& c : clients) {
        if (c.holding()) {
          ++acq;
          c.release();
        }
        c.tick(t, mem);
        if (c.state() == LockClient::State::Idle) c.acquire();
      }
      mem.tick(t);
    }
    return static_cast<double>(t) / static_cast<double>(acq);
  };
  const double few = handoff(2);
  const double many = handoff(8);
  EXPECT_LT(many, few * 2.5) << "hand-off must not collapse with waiters";
}

}  // namespace
