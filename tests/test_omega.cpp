// Tests for the omega topology and the clock-driven synchronous omega,
// including an exact check against the paper's Table 3.4.
#include <gtest/gtest.h>

#include "net/omega.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cfm::net;

TEST(OmegaTopology, RejectsNonPowerOfTwo) {
  EXPECT_THROW(OmegaTopology(6), std::invalid_argument);
  EXPECT_THROW(OmegaTopology(1), std::invalid_argument);
}

TEST(OmegaTopology, ShuffleIsRotateLeft) {
  OmegaTopology topo(8);
  EXPECT_EQ(topo.shuffle(0b000), 0b000u);
  EXPECT_EQ(topo.shuffle(0b001), 0b010u);
  EXPECT_EQ(topo.shuffle(0b100), 0b001u);
  EXPECT_EQ(topo.shuffle(0b110), 0b101u);
}

TEST(OmegaTopology, RouteReachesDestination) {
  OmegaTopology topo(16);
  for (Port s = 0; s < 16; ++s) {
    for (Port d = 0; d < 16; ++d) {
      const auto path = topo.route(s, d);
      ASSERT_EQ(path.size(), 4u);
      EXPECT_EQ(path.back().line_after, d);
    }
  }
}

TEST(OmegaTopology, RouteStageOutputBitsFollowDestinationTag) {
  OmegaTopology topo(8);
  const auto path = topo.route(3, 5);  // dst = 0b101
  EXPECT_EQ(path[0].out_port, 1);
  EXPECT_EQ(path[1].out_port, 0);
  EXPECT_EQ(path[2].out_port, 1);
}

TEST(SyncOmega, RealizesUniformShiftAtEverySlot) {
  for (const std::uint32_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    SyncOmega so(n);
    for (cfm::sim::Cycle t = 0; t < n; ++t) {
      for (Port i = 0; i < n; ++i) {
        EXPECT_EQ(so.output_for(t, i), (t + i) % n)
            << "n=" << n << " t=" << t << " i=" << i;
      }
    }
  }
}

TEST(SyncOmega, StateTableMatchesPaperTable34) {
  // Table 3.4: states of the 12 switches of the 8x8 synchronous omega,
  // 0 = straight, 1 = interchange, columns 0..2, switches 0..3.
  const int expected[8][3][4] = {
      {{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}},  // slot 0
      {{0, 0, 0, 1}, {0, 0, 1, 1}, {1, 1, 1, 1}},  // slot 1
      {{0, 0, 1, 1}, {1, 1, 1, 1}, {0, 0, 0, 0}},  // slot 2
      {{0, 1, 1, 1}, {1, 1, 0, 0}, {1, 1, 1, 1}},  // slot 3
      {{1, 1, 1, 1}, {0, 0, 0, 0}, {0, 0, 0, 0}},  // slot 4
      {{1, 1, 1, 0}, {0, 0, 1, 1}, {1, 1, 1, 1}},  // slot 5
      {{1, 1, 0, 0}, {1, 1, 1, 1}, {0, 0, 0, 0}},  // slot 6
      {{1, 0, 0, 0}, {1, 1, 0, 0}, {1, 1, 1, 1}},  // slot 7
  };
  SyncOmega so(8);
  for (int t = 0; t < 8; ++t) {
    for (int col = 0; col < 3; ++col) {
      for (int sw = 0; sw < 4; ++sw) {
        EXPECT_EQ(static_cast<int>(so.switch_state(t, col, sw)),
                  expected[t][col][sw])
            << "slot " << t << " column " << col << " switch " << sw;
      }
    }
  }
}

TEST(SyncOmega, StatesPeriodicInN) {
  SyncOmega so(8);
  for (cfm::sim::Cycle t = 0; t < 8; ++t) {
    for (std::uint32_t s = 0; s < 3; ++s) {
      for (std::uint32_t w = 0; w < 4; ++w) {
        EXPECT_EQ(so.switch_state(t, s, w), so.switch_state(t + 8, s, w));
      }
    }
  }
}

TEST(SyncOmega, UniformShiftsAlwaysSchedulable) {
  OmegaTopology topo(32);
  for (std::uint64_t t = 0; t < 32; ++t) {
    EXPECT_TRUE(SyncOmega::schedule_for_permutation(
                    topo, shift_permutation(t, 32))
                    .has_value());
  }
}

TEST(SyncOmega, MostRandomPermutationsBlock) {
  // The reason plain MINs contend: an omega passes only a thin slice of
  // all permutations in one pass.  Statistically confirm that random
  // permutations usually fail where shifts never do.
  OmegaTopology topo(16);
  cfm::sim::Rng rng(99);
  int blocked = 0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<Port> perm(16);
    for (Port i = 0; i < 16; ++i) perm[i] = i;
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    if (!SyncOmega::schedule_for_permutation(topo, perm).has_value()) {
      ++blocked;
    }
  }
  EXPECT_GT(blocked, trials / 2);
}

class SyncOmegaSizes : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SyncOmegaSizes, NoSwitchConflictEver) {
  const auto n = GetParam();
  // Constructing SyncOmega asserts internally that every shift has a
  // conflict-free schedule; traversal equals the formula (checked above).
  SyncOmega so(n);
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(PowersOfTwo, SyncOmegaSizes,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u,
                                           256u));

}  // namespace
