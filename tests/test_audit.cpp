// The runtime conflict-freedom auditor, both directions:
//   * positive: every CFM configuration passes live traffic with zero
//     violations — including a 64-processor hierarchical machine under
//     the parallel tick scheduler;
//   * negative: the same instrument counts module conflicts on the
//     conventional interleaved memory, alignment stalls on the
//     phase-aligned (Monarch/OMP) model, and rejected injections on the
//     buffered omega — Fig 2.1's contention, machine-checked;
//   * sensitivity: fed a fabricated overlap / mis-scheduled bank /
//     stretched tour / broken permutation, the checks actually fire.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "cache/hierarchical.hpp"
#include "cfm/cfm_memory.hpp"
#include "mem/conventional.hpp"
#include "mem/phase_aligned.hpp"
#include "sim/audit.hpp"
#include "sim/engine.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/report.hpp"
#include "sim/rng.hpp"
#include "workload/lock_workload.hpp"
#include "workload/trace.hpp"

namespace {

using namespace cfm;
using cfm::sim::AuditScopeKind;
using cfm::sim::ConflictAuditor;
using cfm::sim::Cycle;

// ---- sensitivity: the checks must fire when the invariant is broken ----

TEST(AuditSensitivity, DetectsBankOverlap) {
  ConflictAuditor a;
  const auto s = a.add_scope("unit", AuditScopeKind::ConflictFree, 4,
                             /*bank_cycle=*/2, /*beta=*/0);
  a.on_bank_access(s, 10, 1);
  a.on_bank_access(s, 11, 1);  // bank 1 still held until 12
  a.on_bank_access(s, 13, 1);  // the re-hold from cycle 11 expired: legal
  EXPECT_EQ(a.violations(), 1u);
  const auto samples = a.violation_samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].kind, "bank_conflict");
  EXPECT_EQ(samples[0].cycle, 11u);
}

TEST(AuditSensitivity, DetectsScheduleMismatch) {
  ConflictAuditor a;
  // 4 processors, c = 1, b = 4: slot t, proc p -> bank (t + p) mod 4.
  const auto s = a.add_scope("unit", AuditScopeKind::ConflictFree, 4, 1, 0);
  a.on_scheduled_access(s, 3, 2, (3 + 2) % 4);  // correct
  EXPECT_EQ(a.violations(), 0u);
  a.on_scheduled_access(s, 3, 2, 0);  // wrong bank
  EXPECT_EQ(a.violations(), 1u);
}

TEST(AuditSensitivity, DetectsStretchedTour) {
  ConflictAuditor a;
  const auto s = a.add_scope("unit", AuditScopeKind::ConflictFree, 8, 1,
                             /*beta=*/8);
  a.on_block_complete(s, 100, 108);  // beta = 8: exact
  EXPECT_EQ(a.violations(), 0u);
  a.on_block_complete(s, 100, 109);  // stretched
  EXPECT_EQ(a.violations(), 1u);
}

TEST(AuditSensitivity, DetectsBrokenOmegaPermutation) {
  ConflictAuditor a;
  const auto s = a.add_scope("omega", AuditScopeKind::ConflictFree, 4, 1, 0);
  // The uniform shift at slot 1: output (1 + i) mod 4.
  std::array<std::uint32_t, 4> good{1, 2, 3, 0};
  a.on_omega_slot(s, 1, good);
  EXPECT_EQ(a.violations(), 0u);
  std::array<std::uint32_t, 4> collide{1, 1, 3, 0};  // not a permutation
  a.on_omega_slot(s, 2, collide);
  EXPECT_GT(a.violations(), 0u);
  const auto before = a.violations();
  std::array<std::uint32_t, 4> wrong_shift{2, 3, 0, 1};  // permutation, not σ_3
  a.on_omega_slot(s, 3, wrong_shift);
  EXPECT_GT(a.violations(), before);
}

// ---- scope kinds: same detections, different ledgers -------------------

TEST(AuditScopes, ContendedScopeCountsConflictsNotViolations) {
  ConflictAuditor a;
  const auto s = a.add_scope("baseline", AuditScopeKind::Contended, 2,
                             /*bank_cycle=*/4, 0);
  a.on_module_access(s, 0, 0, 4);
  a.on_module_access(s, 1, 0, 4);  // module 0 busy until 4
  EXPECT_EQ(a.violations(), 0u);
  EXPECT_EQ(a.conflicts_detected(), 1u);
}

// ---- positive control: live CFM traffic, zero violations ---------------

TEST(AuditCfm, RandomDistinctBlockTrafficIsClean) {
  for (const auto& [procs, c] : std::vector<std::pair<std::uint32_t,
                                                      std::uint32_t>>{
           {2, 1}, {4, 1}, {8, 2}, {16, 1}, {16, 4}}) {
    core::CfmMemory mem(core::CfmConfig::make(procs, c));
    ConflictAuditor auditor;
    mem.set_audit(auditor);
    sim::Rng rng(7 + procs + c);
    std::vector<core::CfmMemory::OpToken> live(procs, core::CfmMemory::kNoOp);
    Cycle t = 0;
    for (; t < 2000; ++t) {
      for (std::uint32_t p = 0; p < procs; ++p) {
        if (live[p] != core::CfmMemory::kNoOp &&
            mem.take_result(live[p]).has_value()) {
          live[p] = core::CfmMemory::kNoOp;
        }
        if (live[p] == core::CfmMemory::kNoOp && rng.chance(0.6)) {
          live[p] = mem.issue(t, p, core::BlockOpKind::Read, 500 + p);
        }
      }
      mem.tick(t);
    }
    EXPECT_GT(auditor.checks_performed(), 0u)
        << procs << " procs, c = " << c;
    EXPECT_EQ(auditor.violations(), 0u) << procs << " procs, c = " << c;
  }
}

TEST(AuditCfm, TraceReplayIsClean) {
  const auto trace = workload::Trace::uniform(8, 1, 64, 500, 600, 0.3, 11);
  ConflictAuditor auditor;
  const auto r =
      workload::replay_on_cfm_instrumented(trace, 8, 2, nullptr, &auditor);
  EXPECT_EQ(r.unfinished, 0u);
  EXPECT_GT(auditor.checks_performed(), 0u);
  EXPECT_EQ(auditor.violations(), 0u);
}

// 64 processors, both levels audited, parallel tick scheduler: the
// paper's invariants hold under the most concurrent configuration the
// simulator offers.
TEST(AuditCfm, HierarchicalSixtyFourProcsUnderParallelEngine) {
  auto engine = sim::Engine::make(sim::EngineConfig{4});
  cache::HierarchicalCfm::Params params;
  params.clusters = 8;
  params.procs_per_cluster = 8;
  cache::HierarchicalCfm sys(params);
  ConflictAuditor auditor;
  sys.set_audit(auditor);
  sys.attach(*engine);

  sim::Rng rng(42);
  std::vector<cache::HierarchicalCfm::ReqId> pending(sys.processor_count(), 0);
  auto driver = std::make_shared<sim::LambdaComponent>("audit.driver",
                                                       sim::kSharedDomain);
  driver->on(sim::Phase::Issue, [&](Cycle now) {
    const auto n = static_cast<sim::ProcessorId>(pending.size());
    for (sim::ProcessorId p = 0; p < n; ++p) {
      if (pending[p] != 0 && sys.take_result(pending[p])) pending[p] = 0;
      if (pending[p] == 0 && sys.processor_idle(p)) {
        pending[p] =
            sys.read(now, p, static_cast<sim::BlockAddr>(rng.below(512)));
      }
    }
  });
  engine->add(std::move(driver));
  engine->run_for(3000);

  EXPECT_GT(auditor.checks_performed(), 1000u);
  EXPECT_EQ(auditor.violations(), 0u)
      << auditor.to_json().dump(2).substr(0, 2000);
}

// ---- negative controls: the baselines must show their contention -------

TEST(AuditNegative, ConventionalHotSpotShowsConflicts) {
  mem::ConventionalMemory memory(4, /*beta=*/8);
  ConflictAuditor auditor;
  memory.set_audit(auditor);
  // Four requesters hammer module 0 every cycle: all but one conflict.
  std::uint64_t direct = 0;
  for (Cycle now = 0; now < 200; ++now) {
    for (int req = 0; req < 4; ++req) {
      if (memory.try_start(0, now) == sim::kNeverCycle) ++direct;
    }
  }
  EXPECT_GT(direct, 0u);
  EXPECT_EQ(auditor.violations(), 0u);  // Contended scope: not violations
  EXPECT_EQ(auditor.conflicts_detected(), direct)
      << "auditor must re-count exactly the module conflicts";
}

TEST(AuditNegative, PhaseAlignedStallsAreCounted) {
  mem::PhaseAlignedMemory memory(/*period=*/4, /*phase=*/0,
                                 /*access_time=*/4);
  ConflictAuditor auditor;
  memory.set_audit(auditor);
  std::uint64_t stalled = 0;
  for (Cycle now = 0; now < 40; ++now) {
    if (memory.stall_for(now) > 0) ++stalled;
    (void)memory.start(now);
  }
  EXPECT_GT(stalled, 0u);
  EXPECT_EQ(auditor.conflicts_detected(), stalled);
  EXPECT_EQ(auditor.violations(), 0u);
}

TEST(AuditNegative, BufferedOmegaHotSpotRejectsAreCounted) {
  ConflictAuditor auditor;
  const auto r = workload::run_hotspot_buffered(16, 0.35, 0.5, 2, 4000, 5,
                                                /*combining=*/false, &auditor);
  EXPECT_GT(r.reject_rate, 0.0);
  EXPECT_GT(auditor.conflicts_detected(), 0u);
  EXPECT_EQ(auditor.violations(), 0u);
}

// ---- report section ----------------------------------------------------

TEST(AuditReport, SectionShapeAndTotals) {
  core::CfmMemory mem(core::CfmConfig::make(4));
  ConflictAuditor auditor;
  mem.set_audit(auditor);
  std::vector<core::CfmMemory::OpToken> ops;
  for (std::uint32_t p = 0; p < 4; ++p) {
    ops.push_back(mem.issue(0, p, core::BlockOpKind::Read, p));
  }
  Cycle t = 0;
  for (; t < 32; ++t) mem.tick(t);

  sim::Report report("audit_test");
  auditor.to_report(report);
  const auto doc = sim::Json::parse(report.to_json().dump());
  const auto& audit = doc.at("audit");
  EXPECT_EQ(audit.at("violations").as_uint(), 0u);
  EXPECT_EQ(audit.at("checks").as_uint(), auditor.checks_performed());
  EXPECT_TRUE(audit.at("scopes").is_object());
  EXPECT_TRUE(audit.at("samples").is_array());
  for (const auto& [name, scope] : audit.at("scopes").as_object()) {
    EXPECT_TRUE(scope.at("kind").is_string()) << name;
    EXPECT_TRUE(scope.at("checks").is_object()) << name;
  }
}

}  // namespace
