// Tests for trace replay on both machines (the constant-workload
// comparison used by bench_trace_replay).
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "sim/rng.hpp"
#include "workload/trace.hpp"

namespace {

using namespace cfm::workload;

TEST(ReplayConventional, CompletesEverything) {
  const auto trace = Trace::uniform(8, 4, 64, 400, 2000, 0.3, 5);
  const auto r = replay_on_conventional(trace, 8, 4, 16, 1);
  EXPECT_EQ(r.completed, 400u);
  EXPECT_GE(r.mean_latency, 16.0);
}

TEST(ReplayConventional, MoreModulesFewerRetries) {
  const auto dense = Trace::uniform(16, 32, 64, 2000, 2000, 0.3, 7);
  const auto few = replay_on_conventional(
      Trace::uniform(16, 4, 64, 2000, 2000, 0.3, 7), 16, 4, 16, 1);
  const auto many = replay_on_conventional(dense, 16, 32, 16, 1);
  EXPECT_GT(few.restarts, many.restarts);
  EXPECT_GE(few.makespan, many.makespan);
}

TEST(ReplayCfmVsConventional, CfmLatencyPinnedAtBeta) {
  const auto cfm_trace = Trace::uniform(16, 1, 64, 1000, 1000, 0.0, 9);
  const auto cfm = replay_on_cfm(cfm_trace, 16, 1);
  EXPECT_EQ(cfm.completed, 1000u);
  // Read-only distinct-ish traffic: every access is exactly beta = 16.
  EXPECT_NEAR(cfm.mean_latency, 16.0, 2.0);

  const auto conv_trace = Trace::uniform(16, 16, 64, 1000, 1000, 0.0, 9);
  const auto conv = replay_on_conventional(conv_trace, 16, 16, 16, 1);
  EXPECT_GT(conv.mean_latency, cfm.mean_latency);
}

TEST(ReplayConventional, DeterministicForFixedSeed) {
  const auto trace = Trace::uniform(8, 8, 64, 500, 1500, 0.5, 11);
  const auto a = replay_on_conventional(trace, 8, 8, 16, 42);
  const auto b = replay_on_conventional(trace, 8, 8, 16, 42);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
}

// Regression: a trace with an out-of-range processor id used to be
// caught only by a compiled-out assert; in release builds it indexed the
// per-processor arrays out of bounds.  Both replay paths must refuse it.
TEST(ReplayValidation, OutOfRangeProcessorThrows) {
  Trace trace;
  trace.add(TraceRecord{0, /*proc=*/8, false, 0, 1});
  EXPECT_THROW((void)replay_on_cfm(trace, 8, 1), std::invalid_argument);
  EXPECT_THROW((void)replay_on_conventional(trace, 8, 4, 16, 1),
               std::invalid_argument);
}

TEST(ReplayValidation, OutOfRangeModuleThrowsOnConventional) {
  Trace trace;
  trace.add(TraceRecord{0, 0, false, /*module=*/4, 1});
  // The CFM path ignores modules; the conventional path indexes them.
  EXPECT_NO_THROW((void)replay_on_cfm(trace, 8, 1));
  EXPECT_THROW((void)replay_on_conventional(trace, 8, 4, 16, 1),
               std::invalid_argument);
}

TEST(ReplayValidation, LoadRejectsMalformedRecord) {
  std::istringstream good("0 1 0 2 3\n4 5 1 6 7\n");
  EXPECT_EQ(Trace::load(good).size(), 2u);
  std::istringstream bad("0 1 0 2 3\n4 oops 1 6 7\n");
  EXPECT_THROW((void)Trace::load(bad), std::invalid_argument);
}

// Regression: Trace::uniform sorted with std::sort, whose order among
// equal issue cycles is stdlib-dependent — the same seed produced
// different traces on different platforms.  With every record tied at
// issue 0, stable_sort must preserve exact generation order.
TEST(TraceUniform, TiedIssueCyclesKeepGenerationOrder) {
  constexpr std::uint32_t kProcs = 16, kModules = 4;
  constexpr cfm::sim::BlockAddr kBlocks = 64;
  constexpr std::size_t kN = 1000;
  constexpr double kWriteFraction = 0.5;
  constexpr std::uint64_t kSeed = 2026;

  const auto trace =
      Trace::uniform(kProcs, kModules, kBlocks, kN, /*cycles=*/1,
                     kWriteFraction, kSeed);
  ASSERT_EQ(trace.size(), kN);

  // Replay the generator's RNG call sequence to recover the
  // pre-sort order.
  cfm::sim::Rng rng(kSeed);
  for (std::size_t i = 0; i < kN; ++i) {
    TraceRecord want;
    want.issue = rng.below(1);
    want.proc = static_cast<cfm::sim::ProcessorId>(rng.below(kProcs));
    want.is_write = rng.chance(kWriteFraction);
    want.module = static_cast<std::uint32_t>(rng.below(kModules));
    want.offset = rng.below(kBlocks);
    const auto& got = trace.records()[i];
    ASSERT_EQ(got.issue, want.issue) << "record " << i;
    ASSERT_EQ(got.proc, want.proc) << "record " << i;
    ASSERT_EQ(got.is_write, want.is_write) << "record " << i;
    ASSERT_EQ(got.module, want.module) << "record " << i;
    ASSERT_EQ(got.offset, want.offset) << "record " << i;
  }
}

// Regression: replays that hit the internal cycle budget used to report
// only the drained prefix, indistinguishable from a full run.  Records
// issued far beyond the budget must now be counted as unfinished.
TEST(ReplayTruncation, UnfinishedCountsRecordsPastBudget) {
  Trace trace;
  trace.add(TraceRecord{0, 0, false, 0, 1});
  // Both budgets scale with trace size; 100M cycles is far past either.
  trace.add(TraceRecord{100'000'000, 1, false, 0, 2});

  const auto cfm = replay_on_cfm(trace, 8, 1);
  EXPECT_EQ(cfm.completed, 1u);
  EXPECT_EQ(cfm.unfinished, 1u);

  const auto conv = replay_on_conventional(trace, 8, 4, 16, 1);
  EXPECT_EQ(conv.completed, 1u);
  EXPECT_EQ(conv.unfinished, 1u);
}

TEST(ReplayTruncation, FullRunsReportZeroUnfinished) {
  const auto trace = Trace::uniform(8, 4, 64, 300, 1000, 0.3, 21);
  EXPECT_EQ(replay_on_cfm(trace, 8, 1).unfinished, 0u);
  EXPECT_EQ(replay_on_conventional(trace, 8, 4, 16, 1).unfinished, 0u);
}

}  // namespace
