// Tests for trace replay on both machines (the constant-workload
// comparison used by bench_trace_replay).
#include <gtest/gtest.h>

#include "workload/trace.hpp"

namespace {

using namespace cfm::workload;

TEST(ReplayConventional, CompletesEverything) {
  const auto trace = Trace::uniform(8, 4, 64, 400, 2000, 0.3, 5);
  const auto r = replay_on_conventional(trace, 8, 4, 16, 1);
  EXPECT_EQ(r.completed, 400u);
  EXPECT_GE(r.mean_latency, 16.0);
}

TEST(ReplayConventional, MoreModulesFewerRetries) {
  const auto dense = Trace::uniform(16, 32, 64, 2000, 2000, 0.3, 7);
  const auto few = replay_on_conventional(
      Trace::uniform(16, 4, 64, 2000, 2000, 0.3, 7), 16, 4, 16, 1);
  const auto many = replay_on_conventional(dense, 16, 32, 16, 1);
  EXPECT_GT(few.restarts, many.restarts);
  EXPECT_GE(few.makespan, many.makespan);
}

TEST(ReplayCfmVsConventional, CfmLatencyPinnedAtBeta) {
  const auto cfm_trace = Trace::uniform(16, 1, 64, 1000, 1000, 0.0, 9);
  const auto cfm = replay_on_cfm(cfm_trace, 16, 1);
  EXPECT_EQ(cfm.completed, 1000u);
  // Read-only distinct-ish traffic: every access is exactly beta = 16.
  EXPECT_NEAR(cfm.mean_latency, 16.0, 2.0);

  const auto conv_trace = Trace::uniform(16, 16, 64, 1000, 1000, 0.0, 9);
  const auto conv = replay_on_conventional(conv_trace, 16, 16, 16, 1);
  EXPECT_GT(conv.mean_latency, cfm.mean_latency);
}

TEST(ReplayConventional, DeterministicForFixedSeed) {
  const auto trace = Trace::uniform(8, 8, 64, 500, 1500, 0.5, 11);
  const auto a = replay_on_conventional(trace, 8, 8, 16, 42);
  const auto b = replay_on_conventional(trace, 8, 8, 16, 42);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
}

}  // namespace
