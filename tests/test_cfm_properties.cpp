// Randomized property tests for the CFM consistency machinery (§4.1/§4.2):
// whatever the interleaving of same-block operations,
//   * every completed read returns ONE version (no torn blocks),
//   * the final memory content equals some completed write's data,
//   * concurrent swaps and writes serialize (atomicity),
//   * distinct-block traffic never aborts, restarts, or stretches beyond
//     beta (the conflict-freedom guarantee).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "cfm/cfm_memory.hpp"
#include "sim/audit.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::Cycle;
using cfm::sim::Word;

struct Shape {
  std::uint32_t processors;
  std::uint32_t bank_cycle;
  ConsistencyPolicy policy;
};

class CfmRandomOps : public ::testing::TestWithParam<Shape> {};

TEST_P(CfmRandomOps, SameBlockChaosStaysConsistent) {
  const auto shape = GetParam();
  CfmMemory mem(CfmConfig::make(shape.processors, shape.bank_cycle),
                shape.policy);
  cfm::sim::ConflictAuditor auditor;
  mem.set_audit(auditor);
  const auto banks = mem.config().banks;
  cfm::sim::Rng rng(1234 + shape.processors + shape.bank_cycle);
  const cfm::sim::BlockAddr target = 42;
  mem.poke_block(target, std::vector<Word>(banks, 0));

  // Every write/swap uses a unique uniform fill value so a torn block is
  // detectable as a mixed-value read.
  Word next_value = 1;
  std::set<Word> write_values{0};
  std::map<CfmMemory::OpToken, BlockOpKind> kinds;
  std::vector<CfmMemory::OpToken> live(shape.processors, CfmMemory::kNoOp);
  std::uint64_t completed_reads = 0;

  Cycle t = 0;
  for (; t < 6000; ++t) {
    for (std::uint32_t p = 0; p < shape.processors; ++p) {
      auto& token = live[p];
      if (token != CfmMemory::kNoOp) {
        if (auto r = mem.take_result(token)) {
          const auto kind = kinds[token];
          if (kind != BlockOpKind::Write &&
              r->status == OpStatus::Completed) {
            ASSERT_FALSE(r->data.empty());
            const Word v = r->data[0];
            for (const Word w : r->data) {
              ASSERT_EQ(w, v) << "torn block read";
            }
            ASSERT_TRUE(write_values.count(v)) << "phantom value";
            ++completed_reads;
          }
          token = CfmMemory::kNoOp;
        }
      }
      if (token == CfmMemory::kNoOp && rng.chance(0.25)) {
        const double pick = rng.uniform();
        if (pick < 0.4) {
          token = mem.issue(t, p, BlockOpKind::Read, target);
          kinds[token] = BlockOpKind::Read;
        } else if (pick < 0.8 ||
                   shape.policy == ConsistencyPolicy::LatestWins) {
          const Word v = next_value++;
          write_values.insert(v);
          token = mem.issue(t, p, BlockOpKind::Write, target,
                            std::vector<Word>(banks, v));
          kinds[token] = BlockOpKind::Write;
        } else {
          const Word v = next_value++;
          write_values.insert(v);
          token = mem.issue(t, p, BlockOpKind::Swap, target,
                            std::vector<Word>(banks, v));
          kinds[token] = BlockOpKind::Swap;
        }
      }
    }
    mem.tick(t);
  }
  // Drain.
  for (Cycle extra = 0; extra < 10 * banks; ++extra) mem.tick(t++);

  EXPECT_GT(completed_reads, 20u);
  // Same-block chaos shares data, never banks: the runtime auditor must
  // see zero conflict-freedom violations.
  EXPECT_GT(auditor.checks_performed(), 0u);
  EXPECT_EQ(auditor.violations(), 0u);
  const auto final_block = mem.peek_block(target);
  const Word v = final_block[0];
  for (const Word w : final_block) {
    EXPECT_EQ(w, v) << "final memory torn";
  }
  EXPECT_TRUE(write_values.count(v));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CfmRandomOps,
    ::testing::Values(Shape{4, 1, ConsistencyPolicy::LatestWins},
                      Shape{8, 1, ConsistencyPolicy::LatestWins},
                      Shape{16, 1, ConsistencyPolicy::LatestWins},
                      Shape{4, 1, ConsistencyPolicy::EarliestWins},
                      Shape{8, 1, ConsistencyPolicy::EarliestWins},
                      Shape{16, 1, ConsistencyPolicy::EarliestWins},
                      Shape{4, 2, ConsistencyPolicy::EarliestWins},
                      Shape{8, 2, ConsistencyPolicy::LatestWins}));

class CfmDistinctBlocks : public ::testing::TestWithParam<Shape> {};

TEST_P(CfmDistinctBlocks, NeverConflictsNeverStretches) {
  const auto shape = GetParam();
  CfmMemory mem(CfmConfig::make(shape.processors, shape.bank_cycle),
                shape.policy);
  cfm::sim::ConflictAuditor auditor;
  mem.set_audit(auditor);
  const auto banks = mem.config().banks;
  const auto beta = mem.config().block_access_time();
  cfm::sim::Rng rng(99 + shape.processors);
  std::vector<CfmMemory::OpToken> live(shape.processors, CfmMemory::kNoOp);
  std::vector<Cycle> issued(shape.processors, 0);
  std::uint64_t completed = 0;

  Cycle t = 0;
  for (; t < 3000; ++t) {
    for (std::uint32_t p = 0; p < shape.processors; ++p) {
      auto& token = live[p];
      if (token != CfmMemory::kNoOp) {
        if (auto r = mem.take_result(token)) {
          ASSERT_EQ(r->status, OpStatus::Completed);
          ASSERT_EQ(r->restarts, 0u);
          // Each op takes exactly its nominal time (swap = 2 tours).
          const auto elapsed = r->completed - issued[p];
          ASSERT_TRUE(elapsed == beta || elapsed == beta + banks)
              << "conflict-free op stretched to " << elapsed;
          ++completed;
          token = CfmMemory::kNoOp;
        }
      }
      if (token == CfmMemory::kNoOp && rng.chance(0.5)) {
        // Per-processor private block: no sharing.
        const cfm::sim::BlockAddr addr = 1000 + p;
        const double pick = rng.uniform();
        if (pick < 0.5) {
          token = mem.issue(t, p, BlockOpKind::Read, addr);
        } else if (pick < 0.9 ||
                   shape.policy == ConsistencyPolicy::LatestWins) {
          token = mem.issue(t, p, BlockOpKind::Write, addr,
                            std::vector<Word>(banks, t));
        } else {
          token = mem.issue(t, p, BlockOpKind::Swap, addr,
                            std::vector<Word>(banks, t));
        }
        issued[p] = t;
      }
    }
    mem.tick(t);
  }
  EXPECT_GT(completed, 100u);
  EXPECT_EQ(mem.counters().get("read_restarts"), 0u);
  EXPECT_EQ(mem.counters().get("ops_aborted"), 0u);
  EXPECT_GT(auditor.checks_performed(), 0u);
  EXPECT_EQ(auditor.violations(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CfmDistinctBlocks,
    ::testing::Values(Shape{2, 1, ConsistencyPolicy::LatestWins},
                      Shape{4, 1, ConsistencyPolicy::EarliestWins},
                      Shape{8, 2, ConsistencyPolicy::EarliestWins},
                      Shape{16, 1, ConsistencyPolicy::EarliestWins},
                      Shape{16, 4, ConsistencyPolicy::EarliestWins}));

TEST(CfmSwapAtomicity, ConcurrentCountersNeverLoseIncrements) {
  // Each processor repeatedly performs read-modify-write(+1) on a shared
  // counter block via Swap.  Atomicity means the final value equals the
  // number of completed swaps — no lost updates.
  CfmMemory mem(CfmConfig::make(8, 1), ConsistencyPolicy::EarliestWins);
  const auto banks = mem.config().banks;
  mem.poke_block(5, std::vector<Word>(banks, 0));
  std::vector<CfmMemory::OpToken> live(8, CfmMemory::kNoOp);
  std::uint64_t completed_swaps = 0;

  const auto inc = [](const std::vector<Word>& in) {
    auto out = in;
    for (auto& w : out) w += 1;
    return out;
  };

  Cycle t = 0;
  for (; t < 5000; ++t) {
    for (std::uint32_t p = 0; p < 8; ++p) {
      auto& token = live[p];
      if (token != CfmMemory::kNoOp) {
        if (auto r = mem.take_result(token)) {
          ASSERT_EQ(r->status, OpStatus::Completed);
          ++completed_swaps;
          token = CfmMemory::kNoOp;
        }
      }
      if (token == CfmMemory::kNoOp && completed_swaps + 16 < 400) {
        token = mem.issue(t, p, BlockOpKind::Swap, 5, {}, inc);
      }
    }
    mem.tick(t);
  }
  // Drain every in-flight swap (restart back-off can stretch the tail).
  std::uint64_t drained = 0;
  for (Cycle extra = 0; extra < 2000; ++extra) {
    bool any = false;
    for (auto& token : live) {
      if (token == CfmMemory::kNoOp) continue;
      if (mem.take_result(token)) {
        ++drained;
        token = CfmMemory::kNoOp;
      } else {
        any = true;
      }
    }
    if (!any) break;
    mem.tick(t++);
  }
  const auto final_block = mem.peek_block(5);
  EXPECT_EQ(final_block[0], completed_swaps + drained);
  for (const Word w : final_block) EXPECT_EQ(w, final_block[0]);
}

}  // namespace
