// Additional protocol-layer tests: longer bank cycles, the in-flight-fill
// squash (stale-Valid prevention), weak-consistency ordering (§5.3.1
// conditions), and protocol counters.
#include <gtest/gtest.h>

#include "cache/cfm_protocol.hpp"
#include "sim/rng.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;
using cfm::sim::Word;

CfmCacheSystem::Outcome run_one(CfmCacheSystem& sys, Cycle& t,
                                CfmCacheSystem::ReqId id) {
  for (int i = 0; i < 20000; ++i) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(id)) return *r;
  }
  ADD_FAILURE() << "request timed out";
  return {};
}

TEST(ProtocolC2, WorksWithTwoCycleBanks) {
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(4, 2);  // 8 banks, beta = 9
  CfmCacheSystem sys(p);
  sys.poke_memory(3, std::vector<Word>(8, 7));
  Cycle t = 0;
  const auto r = run_one(sys, t, sys.load(t, 0, 3));
  EXPECT_EQ(r.data.at(0), 7u);
  // Latency >= beta = 9 (plus a resolution cycle).
  EXPECT_GE(r.completed - r.issued, 9u);
  EXPECT_LE(r.completed - r.issued, 11u);
  const auto w = run_one(sys, t, sys.store(t, 1, 3, 0, 9));
  EXPECT_EQ(sys.line_state(0, 3), LineState::Invalid);
  EXPECT_EQ(sys.line_state(1, 3), LineState::Dirty);
  (void)w;
}

TEST(ProtocolSquash, ConcurrentFillNeverLeavesStaleValid) {
  // Hammer one block with a reader and a writer for a long time; after
  // every write completes and the system quiesces, no cache may hold a
  // Valid copy with stale data.
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(4);
  CfmCacheSystem sys(p);
  cfm::sim::Rng rng(77);
  Cycle t = 0;
  Word counter = 0;
  std::uint64_t reader_req = 0;
  std::uint64_t writer_req = 0;

  for (int round = 0; round < 200; ++round) {
    // Reader (proc 2) and writer (proc 0) race on block 5.
    if (reader_req == 0 && sys.processor_idle(2)) {
      reader_req = sys.load(t, 2, 5);
    }
    if (writer_req == 0 && sys.processor_idle(0)) {
      writer_req = sys.store(t, 0, 5, 0, ++counter);
    }
    for (int i = 0; i < 12; ++i) {
      sys.tick(t);
      ++t;
      if (reader_req != 0 && sys.take_result(reader_req)) reader_req = 0;
      if (writer_req != 0 && sys.take_result(writer_req)) writer_req = 0;
    }
  }
  // Drain.
  for (int i = 0; i < 2000; ++i) {
    sys.tick(t);
    ++t;
    if (reader_req != 0 && sys.take_result(reader_req)) reader_req = 0;
    if (writer_req != 0 && sys.take_result(writer_req)) writer_req = 0;
    if (reader_req == 0 && writer_req == 0 && sys.quiescent(0) &&
        sys.quiescent(2)) {
      break;
    }
  }
  ASSERT_EQ(reader_req, 0u);
  ASSERT_EQ(writer_req, 0u);
  // Quiesced: any Valid copy of block 5 must hold the final value.
  const auto final_value = counter;
  for (std::uint32_t q = 0; q < 4; ++q) {
    if (auto* line = sys.cache(q).find(5);
        line != nullptr && line->state == LineState::Valid && q != 0) {
      EXPECT_EQ(line->data.at(0), final_value)
          << "stale Valid copy at processor " << q;
    }
  }
}

TEST(WeakConsistency, StoreIsPerformedBeforeNextRequestIssues) {
  // §5.3.1 Condition 1/2 analogue in our one-outstanding-access model: a
  // processor's store must be globally visible (ownership taken, remote
  // copies invalidated) before its next access can issue — verified by a
  // remote reader always observing program order.
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(4);
  CfmCacheSystem sys(p);
  Cycle t = 0;
  // flag := 0, data := 0 initially.  Writer: data = 1; flag = 1.
  (void)run_one(sys, t, sys.store(t, 0, /*data block*/ 1, 0, 1));
  (void)run_one(sys, t, sys.store(t, 0, /*flag block*/ 2, 0, 1));
  // Reader: if flag == 1 then data must be 1.
  const auto flag = run_one(sys, t, sys.load(t, 3, 2));
  if (flag.data.at(0) == 1) {
    const auto data = run_one(sys, t, sys.load(t, 3, 1));
    EXPECT_EQ(data.data.at(0), 1u) << "weak-consistency ordering violated";
  } else {
    ADD_FAILURE() << "flag store not visible after completion";
  }
}

TEST(ProtocolCounters, AccountingMatchesActivity) {
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(4);
  CfmCacheSystem sys(p);
  Cycle t = 0;
  (void)run_one(sys, t, sys.load(t, 0, 10));   // 1 proto read
  (void)run_one(sys, t, sys.load(t, 1, 10));   // 1 proto read
  (void)run_one(sys, t, sys.store(t, 2, 10, 0, 1));  // 1 read-inv (+2 inval)
  EXPECT_EQ(sys.counters().get("proto_reads"), 2u);
  EXPECT_EQ(sys.counters().get("proto_read_invs"), 1u);
  EXPECT_EQ(sys.counters().get("invalidations"), 2u);
  EXPECT_EQ(sys.counters().get("local_hits"), 0u);
  (void)run_one(sys, t, sys.load(t, 2, 10));   // dirty hit: local
  EXPECT_EQ(sys.counters().get("local_hits"), 1u);
}

TEST(ProtocolRmw, LongAtomicSectionSerializesWithStore) {
  // A long wb-locked modification and a competing store must serialize:
  // the final value is one of the two sequential orders, never a blend
  // (the store can legally win the ownership race and go first).
  CfmCacheSystem::Params p;
  p.mem = cfm::core::CfmConfig::make(4);
  p.modify_cycles = 30;  // long atomic section
  CfmCacheSystem sys(p);
  Cycle t = 0;
  const auto slow = sys.rmw(t, 0, 8, [](const std::vector<Word>& in) {
    auto out = in;
    out[0] += 100;
    return out;
  });
  const auto thief = sys.store(t + 1, 1, 8, 0, 5);
  bool slow_done = false;
  bool thief_done = false;
  while ((!slow_done || !thief_done) && t < 5000) {
    sys.tick(t);
    ++t;
    if (!slow_done && sys.take_result(slow)) slow_done = true;
    if (!thief_done && sys.take_result(thief)) thief_done = true;
  }
  ASSERT_TRUE(slow_done && thief_done);
  // Flush the final state to memory via a third processor's read.
  const auto probe = run_one(sys, t, sys.load(t, 3, 8));
  const auto v = probe.data.at(0);
  // rmw-then-store -> 5; store-then-rmw -> 105.  A blend (100) would mean
  // the store landed inside the wb-locked modification.
  EXPECT_TRUE(v == 5 || v == 105) << "non-serializable value " << v;
}

}  // namespace
