// Tests for workload drivers: efficiency measurement (simulation vs the
// analytic model), hot-spot runs, lock farms, and trace replay.
#include <gtest/gtest.h>

#include <sstream>

#include "analytic/efficiency.hpp"
#include "workload/access_gen.hpp"
#include "workload/lock_workload.hpp"
#include "workload/trace.hpp"

namespace {

using namespace cfm;
using namespace cfm::workload;

TEST(Efficiency, CfmIsExactlyOne) {
  const auto r = measure_cfm(8, 1, 0.05, 30000, 1);
  EXPECT_GT(r.completed, 100u);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
  EXPECT_EQ(r.conflicts, 0u);
}

TEST(Efficiency, CfmExactForLongerBankCycles) {
  const auto r = measure_cfm(4, 2, 0.04, 30000, 2);
  EXPECT_DOUBLE_EQ(r.efficiency, 1.0);
  EXPECT_DOUBLE_EQ(r.mean_access_time, 9.0);  // beta = 8 + 2 - 1
}

TEST(Efficiency, ConventionalDegradesWithRate) {
  const auto low = measure_conventional(8, 8, 17, 0.01, 150000, 3);
  const auto high = measure_conventional(8, 8, 17, 0.05, 150000, 3);
  EXPECT_LT(low.efficiency, 1.0);
  EXPECT_LT(high.efficiency, low.efficiency);
  EXPECT_GT(high.conflicts, low.conflicts);
}

TEST(Efficiency, ConventionalTracksAnalyticAtLowRate) {
  analytic::ConventionalModel model{8, 8, 17};
  for (const double r : {0.01, 0.02}) {
    const auto sim = measure_conventional(8, 8, 17, r, 300000, 5);
    EXPECT_NEAR(sim.efficiency, model.efficiency(r), 0.06)
        << "rate " << r;
  }
}

TEST(Efficiency, PartialCfmOrderedByLocality) {
  const auto l9 = measure_partial_cfm(64, 8, 17, 0.03, 0.9, 120000, 7);
  const auto l5 = measure_partial_cfm(64, 8, 17, 0.03, 0.5, 120000, 7);
  const auto l3 = measure_partial_cfm(64, 8, 17, 0.03, 0.3, 120000, 7);
  EXPECT_GT(l9.efficiency, l5.efficiency);
  EXPECT_GT(l5.efficiency, l3.efficiency);
}

TEST(Efficiency, PartialCfmTracksAnalytic) {
  analytic::PartialCfmModel model{64, 8, 17};
  for (const double l : {0.9, 0.7, 0.5}) {
    const auto sim = measure_partial_cfm(64, 8, 17, 0.02, l, 200000, 9);
    EXPECT_NEAR(sim.efficiency, model.efficiency(0.02, l), 0.07)
        << "lambda " << l;
  }
}

TEST(HotSpot, SaturationGrowsWithHotFraction) {
  const auto cold = run_hotspot_buffered(16, 0.3, 0.0, 2, 6000, 11);
  const auto hot = run_hotspot_buffered(16, 0.3, 0.5, 2, 6000, 11);
  EXPECT_GT(hot.background_latency, cold.background_latency);
  EXPECT_GT(hot.saturated_queues, cold.saturated_queues);
  EXPECT_GT(hot.reject_rate, cold.reject_rate);
}

TEST(LockFarms, AllThreeMakeProgress) {
  const auto cfm = run_lock_farm_cfm(4, 10, 20000, 1);
  const auto cached = run_lock_farm_cached(4, 10, 20000, 1);
  const auto snoopy = run_lock_farm_snoopy(4, 10, 20000, 1);
  EXPECT_GT(cfm.total_acquisitions, 50u);
  EXPECT_GT(cached.total_acquisitions, 50u);
  EXPECT_GT(snoopy.total_acquisitions, 20u);
  EXPECT_GT(cfm.min_per_proc, 0.0);
  EXPECT_GT(cached.min_per_proc, 0.0);
}

TEST(LockFarms, SnoopyBusIsTheBottleneck) {
  const auto snoopy = run_lock_farm_snoopy(8, 5, 20000, 1);
  // aux_pressure = bus utilization; under 8-way lock contention the bus
  // must be heavily loaded — the hot spot the CFM design removes.
  EXPECT_GT(snoopy.aux_pressure, 0.3);
}

TEST(Trace, SaveLoadRoundtrip) {
  const auto t = Trace::uniform(4, 2, 100, 50, 1000, 0.3, 21);
  std::stringstream ss;
  t.save(ss);
  const auto u = Trace::load(ss);
  ASSERT_EQ(u.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(u.records()[i].issue, t.records()[i].issue);
    EXPECT_EQ(u.records()[i].proc, t.records()[i].proc);
    EXPECT_EQ(u.records()[i].is_write, t.records()[i].is_write);
    EXPECT_EQ(u.records()[i].offset, t.records()[i].offset);
  }
}

TEST(Trace, UniformTraceSortedAndBounded) {
  const auto t = Trace::uniform(8, 4, 64, 200, 5000, 0.5, 33);
  EXPECT_EQ(t.size(), 200u);
  cfm::sim::Cycle prev = 0;
  for (const auto& r : t.records()) {
    EXPECT_GE(r.issue, prev);
    prev = r.issue;
    EXPECT_LT(r.proc, 8u);
    EXPECT_LT(r.module, 4u);
    EXPECT_LT(r.offset, 64u);
  }
}

TEST(Trace, ReplayOnCfmCompletesEverything) {
  const auto t = Trace::uniform(8, 1, 512, 300, 3000, 0.3, 44);
  const auto r = replay_on_cfm(t, 8, 1);
  EXPECT_EQ(r.completed + r.aborted_writes, 300u);
  EXPECT_GE(r.mean_latency, 8.0);  // beta = 8
}

}  // namespace
