// Tests for the structured report layer: the Json value type and its
// parser, the Report document schema, the MetricsRegistry snapshot, and
// the Chrome-trace event sink layered on TraceLog.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

#include "sim/log.hpp"
#include "sim/report.hpp"
#include "sim/stats.hpp"

namespace {

using namespace cfm::sim;

TEST(Json, RoundTripsEveryKind) {
  auto obj = Json::object();
  obj["null"] = nullptr;
  obj["truth"] = true;
  obj["lie"] = false;
  obj["int"] = std::int64_t{-42};
  obj["uint"] = std::uint64_t{18446744073709551615ULL};
  obj["pi"] = 3.141592653589793;
  obj["text"] = "hello";
  auto arr = Json::array();
  arr.push_back(1);
  arr.push_back("two");
  arr.push_back(Json::object({{"nested", 3.5}}));
  obj["list"] = std::move(arr);

  const auto compact = Json::parse(obj.dump());
  EXPECT_EQ(compact, obj);
  const auto pretty = Json::parse(obj.dump(2));
  EXPECT_EQ(pretty, obj);
}

TEST(Json, PreservesFullUint64AndInt64) {
  auto obj = Json::object();
  obj["max_u"] = std::uint64_t{18446744073709551615ULL};
  obj["min_i"] = std::int64_t{-9223372036854775807LL - 1};
  const auto back = Json::parse(obj.dump());
  EXPECT_EQ(back.at("max_u").as_uint(), 18446744073709551615ULL);
  EXPECT_EQ(back.at("min_i").as_int(), -9223372036854775807LL - 1);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string nasty = "quote \" backslash \\ newline \n tab \t ctrl \x01";
  Json j = nasty;
  const auto back = Json::parse(j.dump());
  EXPECT_EQ(back.as_string(), nasty);
}

TEST(Json, DoubleFormattingRoundTrips) {
  for (const double d : {0.0, -0.0, 1.0, 0.1, 1e-300, 1e300, 1.0 / 3.0}) {
    Json j = d;
    const auto back = Json::parse(j.dump());
    EXPECT_DOUBLE_EQ(back.as_double(), d) << "value " << d;
  }
}

TEST(Json, ObjectKeysSerializeSorted) {
  auto obj = Json::object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["mango"] = 3;
  const auto text = obj.dump();
  EXPECT_LT(text.find("apple"), text.find("mango"));
  EXPECT_LT(text.find("mango"), text.find("zebra"));
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), JsonParseError);
  EXPECT_THROW((void)Json::parse("{"), JsonParseError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonParseError);
  EXPECT_THROW((void)Json::parse("{\"a\": 1} trailing"), JsonParseError);
  EXPECT_THROW((void)Json::parse("nul"), JsonParseError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonParseError);
}

TEST(Json, AccessorsEnforceKind) {
  Json s = "text";
  EXPECT_THROW((void)s.as_array(), std::logic_error);
  auto obj = Json::object();
  obj["present"] = 1;
  EXPECT_TRUE(obj.contains("present"));
  EXPECT_FALSE(obj.contains("absent"));
  EXPECT_THROW((void)obj.at("absent"), std::out_of_range);
}

TEST(Report, EmitsSchemaAndAllSections) {
  Report report("unit");
  report.set_param("processors", 8);
  report.add_scalar("efficiency", 0.5);

  CounterSet counters;
  counters.inc("hits", 3);
  counters.inc("misses", 1);
  report.add_counters("cache", counters);

  RunningStat stat;
  for (const double x : {1.0, 2.0, 3.0}) stat.add(x);
  report.add_stat("latency", stat);

  Histogram hist(1.0, 10);
  for (int i = 0; i < 100; ++i) hist.add(static_cast<double>(i % 10));
  report.add_histogram("spread", hist);

  report.add_row("curve", Json::object({{"x", 1}, {"y", 2.0}}));
  report.add_row("curve", Json::object({{"x", 2}, {"y", 4.0}}));
  report.add_section("extra", Json::object({{"note", "hi"}}));

  const auto j = report.to_json();
  EXPECT_EQ(j.at("schema").as_string(), Report::kSchema);
  EXPECT_EQ(j.at("name").as_string(), "unit");
  EXPECT_EQ(j.at("params").at("processors").as_uint(), 8u);
  EXPECT_DOUBLE_EQ(j.at("metrics").at("efficiency").as_double(), 0.5);
  EXPECT_EQ(j.at("counters").at("cache").at("hits").as_uint(), 3u);
  EXPECT_EQ(j.at("stats").at("latency").at("count").as_uint(), 3u);
  EXPECT_DOUBLE_EQ(j.at("stats").at("latency").at("mean").as_double(), 2.0);
  EXPECT_EQ(j.at("histograms").at("spread").at("total").as_uint(), 100u);
  EXPECT_EQ(j.at("tables").at("curve").size(), 2u);
  EXPECT_EQ(j.at("extra").at("note").as_string(), "hi");

  // The streamed form parses back to the same document.
  std::ostringstream os;
  report.write(os);
  EXPECT_EQ(Json::parse(os.str()), j);
}

TEST(Report, StatSummaryRoundTrip) {
  RunningStat stat;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stat.add(x);
  const auto summary = stat_summary_from_json(to_json(stat));
  EXPECT_EQ(summary.count, 8u);
  EXPECT_DOUBLE_EQ(summary.mean, 5.0);
  EXPECT_DOUBLE_EQ(summary.min, 2.0);
  EXPECT_DOUBLE_EQ(summary.max, 9.0);
  EXPECT_DOUBLE_EQ(summary.sum, 40.0);
  EXPECT_NEAR(summary.stddev, stat.stddev(), 1e-12);
}

TEST(Report, CountersRoundTrip) {
  CounterSet counters;
  counters.inc("restarts", 17);
  counters.inc("invalidations", 5);
  const auto back = counters_from_json(to_json(counters));
  EXPECT_EQ(back.get("restarts"), 17u);
  EXPECT_EQ(back.get("invalidations"), 5u);
  EXPECT_EQ(back.all().size(), 2u);
}

TEST(Report, HistogramJsonIncludesQuantiles) {
  Histogram hist(1.0, 100);
  for (int i = 1; i <= 100; ++i) hist.add(static_cast<double>(i - 1));
  const auto j = to_json(hist, {0.5, 0.9});
  EXPECT_EQ(j.at("total").as_uint(), 100u);
  EXPECT_TRUE(j.at("quantiles").contains("p50"));
  EXPECT_TRUE(j.at("quantiles").contains("p90"));
  EXPECT_NEAR(j.at("quantiles").at("p50").as_double(), hist.quantile(0.5),
              1e-12);
}

TEST(MetricsRegistry, SnapshotSeesLiveUpdates) {
  CounterSet counters;
  RunningStat stat;
  Histogram hist(1.0, 4);
  MetricsRegistry registry;
  registry.register_counters("events", counters);
  registry.register_stat("lat", stat);
  registry.register_histogram("h", hist);
  EXPECT_EQ(registry.size(), 3u);

  // Mutations after registration must be visible at snapshot time.
  counters.inc("ticks", 2);
  stat.add(7.0);
  hist.add(1.5);

  Report report("snap");
  registry.snapshot(report);
  const auto j = report.to_json();
  EXPECT_EQ(j.at("counters").at("events").at("ticks").as_uint(), 2u);
  EXPECT_EQ(j.at("stats").at("lat").at("count").as_uint(), 1u);
  EXPECT_EQ(j.at("histograms").at("h").at("total").as_uint(), 1u);
}

TEST(ChromeTrace, CollectsEventsAsJsonArray) {
  ChromeTrace trace;
  trace.instant("issue", "sim", 10.0, 1);
  trace.complete("phase", "engine", 0.0, 42.5, 2);
  trace.counter("queue_depth", 5.0, 3.0);
  EXPECT_EQ(trace.event_count(), 3u);

  const auto j = trace.to_json();
  ASSERT_TRUE(j.is_array());
  ASSERT_EQ(j.size(), 3u);
  const auto& arr = j.as_array();
  EXPECT_EQ(arr[0].at("ph").as_string(), "i");
  EXPECT_EQ(arr[0].at("name").as_string(), "issue");
  EXPECT_EQ(arr[1].at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(arr[1].at("dur").as_double(), 42.5);
  EXPECT_EQ(arr[2].at("ph").as_string(), "C");

  // The streamed form is valid chrome://tracing input (a JSON array).
  std::ostringstream os;
  trace.write(os);
  EXPECT_EQ(Json::parse(os.str()), j);
}

TEST(ChromeTrace, AttachTurnsTraceLogEventsIntoInstants) {
  TraceLog log;
  ChromeTrace trace;
  EXPECT_FALSE(log.enabled());
  trace.attach(log, /*tid=*/7);
  EXPECT_TRUE(log.enabled());

  log.emit(123, "mem", "bank 3 busy");
  log.lazy(124, "net", [](std::ostream& os) { os << "omega pass " << 2; });
  ASSERT_EQ(trace.event_count(), 2u);

  const auto j = trace.to_json();
  const auto& arr = j.as_array();
  EXPECT_EQ(arr[0].at("ph").as_string(), "i");
  EXPECT_EQ(arr[0].at("cat").as_string(), "sim");
  EXPECT_DOUBLE_EQ(arr[0].at("ts").as_double(), 123.0);
  EXPECT_EQ(arr[0].at("tid").as_int(), 7);
  EXPECT_DOUBLE_EQ(arr[1].at("ts").as_double(), 124.0);
}

}  // namespace
