// Tests for the AT-space mapping, including the paper's Table 3.1.
#include <gtest/gtest.h>

#include "cfm/at_space.hpp"

namespace {

using namespace cfm::core;
using cfm::sim::Cycle;

TEST(AtSpace, SimpleMappingC1) {
  // Fig 3.3: at slot t, processor p accesses bank (t + p) mod 4.
  AtSpace at(CfmConfig::make(4, 1));
  EXPECT_EQ(at.bank_at(0, 0), 0u);
  EXPECT_EQ(at.bank_at(0, 3), 3u);
  EXPECT_EQ(at.bank_at(2, 3), 1u);
  EXPECT_EQ(at.bank_at(5, 2), 3u);
}

TEST(AtSpace, Table31AddressPathConnections) {
  // Table 3.1: c=2, n=4, b=8; at slot t processor p is connected to bank
  // (t + 2p) mod 8.  Spot-check the table's structure: at slot 0 the even
  // banks are P0..P3, at slot 1 the odd banks are P0..P3, and bank 0
  // serves P0 at slots 0-1, P3 at slots 2-3, P2 at 4-5, P1 at 6-7.
  AtSpace at(CfmConfig::make(4, 2));
  const auto table = at.connection_table();
  ASSERT_EQ(table.size(), 8u);
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(table[0][2 * p], p);
    EXPECT_FALSE(table[0][2 * p + 1].has_value());
    EXPECT_EQ(table[1][(2 * p + 1) % 8], p);
  }
  EXPECT_EQ(table[2][0], 3u);
  EXPECT_EQ(table[4][0], 2u);
  EXPECT_EQ(table[6][0], 1u);
}

TEST(AtSpace, ProcessorAtInvertsBankAt) {
  AtSpace at(CfmConfig::make(4, 2));
  for (Cycle t = 0; t < 16; ++t) {
    for (std::uint32_t p = 0; p < 4; ++p) {
      const auto bank = at.bank_at(t, p);
      const auto back = at.processor_at(t, bank);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, p);
    }
  }
}

TEST(AtSpace, IdleBanksHaveNoProcessor) {
  AtSpace at(CfmConfig::make(4, 2));
  // At slot 0 the odd banks are mid-cycle (no new address).
  for (const std::uint32_t bank : {1u, 3u, 5u, 7u}) {
    EXPECT_FALSE(at.processor_at(0, bank).has_value());
  }
}

TEST(AtSpace, TourVisitsEveryBankOnce) {
  AtSpace at(CfmConfig::make(4, 2));
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::vector<bool> seen(8, false);
    for (std::uint32_t j = 0; j < 8; ++j) {
      const auto bank = at.visit_bank(3, p, j);
      EXPECT_FALSE(seen[bank]);
      seen[bank] = true;
    }
  }
}

TEST(AtSpace, TimingMatchesFig36) {
  // Fig 3.6: read issued at slot 0 (c=2) -> data from banks 0 and 1 at
  // slots 1 and 2; full completion at t0 + beta.
  AtSpace at(CfmConfig::make(4, 2));
  EXPECT_EQ(at.data_slot(0, 0), 1u);
  EXPECT_EQ(at.data_slot(0, 1), 2u);
  EXPECT_EQ(at.completion(0), 9u);   // beta = 8 + 2 - 1
  EXPECT_EQ(at.completion(5), 14u);  // non-stall start at any slot
}

class AtSpaceExclusivity
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(AtSpaceExclusivity, MutuallyExclusivePartition) {
  const auto [n, c] = GetParam();
  AtSpace at(CfmConfig::make(n, c));
  EXPECT_TRUE(at.verify_exclusive());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AtSpaceExclusivity,
    ::testing::Values(std::make_pair(2u, 1u), std::make_pair(4u, 1u),
                      std::make_pair(4u, 2u), std::make_pair(8u, 2u),
                      std::make_pair(8u, 4u), std::make_pair(16u, 2u),
                      std::make_pair(32u, 1u), std::make_pair(13u, 3u)));

}  // namespace
