// Tests for CfmConfig and the Table 3.3 trade-off enumeration.
#include <gtest/gtest.h>

#include "cfm/config.hpp"

namespace {

using namespace cfm::core;

TEST(Config, DerivedQuantities) {
  const auto cfg = CfmConfig::make(4, 2, 16);
  EXPECT_EQ(cfg.banks, 8u);
  EXPECT_EQ(cfg.block_bits(), 128u);
  EXPECT_EQ(cfg.block_bytes(), 16u);
  EXPECT_EQ(cfg.block_access_time(), 9u);  // beta = b + c - 1
  EXPECT_TRUE(cfg.conflict_free());
}

TEST(Config, BlockBytesRoundsUpSubByteBlocks) {
  // w=4, c=1, n=1 -> b=1: a 4-bit block must occupy one byte, not zero.
  const auto narrow = CfmConfig::make(1, 1, 4);
  EXPECT_EQ(narrow.block_bits(), 4u);
  EXPECT_EQ(narrow.block_bytes(), 1u);
  // w=4, c=1, n=3 -> b=3: 12 bits -> 2 bytes (was 1 by truncation).
  const auto odd = CfmConfig::make(3, 1, 4);
  EXPECT_EQ(odd.block_bits(), 12u);
  EXPECT_EQ(odd.block_bytes(), 2u);
  // Byte-aligned blocks are unchanged.
  EXPECT_EQ(CfmConfig::make(4, 2, 16).block_bytes(), 16u);
}

TEST(Config, ValidateRejectsNonConflictFree) {
  CfmConfig cfg;
  cfg.processors = 4;
  cfg.banks = 6;  // != c*n
  cfg.bank_cycle = 1;
  cfg.word_bits = 32;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.banks = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(Config, PaperExamples) {
  // Table 5.5 machine: 8 banks, c=2 -> beta 9; Table 5.6: 64 banks -> 65.
  EXPECT_EQ(CfmConfig::make(4, 2).block_access_time(), 9u);
  EXPECT_EQ(CfmConfig::make(32, 2).block_access_time(), 65u);
  // Figs 3.13-3.15 use beta=17: 16 banks, c=2.
  EXPECT_EQ(CfmConfig::make(8, 2).block_access_time(), 17u);
}

TEST(Tradeoffs, Table33Exact) {
  // Table 3.3: l = 256 bits, c = 2.
  const auto rows = enumerate_tradeoffs(256, 2);
  ASSERT_EQ(rows.size(), 8u);
  const std::uint32_t expect[8][4] = {
      // banks, word width, memory latency, processors
      {256, 1, 257, 128}, {128, 2, 129, 64}, {64, 4, 65, 32},
      {32, 8, 33, 16},    {16, 16, 17, 8},   {8, 32, 9, 4},
      {4, 64, 5, 2},      {2, 128, 3, 1},
  };
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].banks, expect[i][0]) << "row " << i;
    EXPECT_EQ(rows[i].word_bits, expect[i][1]) << "row " << i;
    EXPECT_EQ(rows[i].memory_latency, expect[i][2]) << "row " << i;
    EXPECT_EQ(rows[i].processors, expect[i][3]) << "row " << i;
  }
}

TEST(Tradeoffs, InvariantsHoldForAllRows) {
  for (const std::uint32_t block : {64u, 256u, 1024u}) {
    for (const std::uint32_t c : {1u, 2u, 4u}) {
      for (const auto& row : enumerate_tradeoffs(block, c)) {
        EXPECT_EQ(row.banks * row.word_bits, block);
        EXPECT_EQ(row.memory_latency, row.banks + c - 1);
        EXPECT_EQ(row.processors, row.banks / c);
        EXPECT_GE(row.processors, 1u);
      }
    }
  }
}

TEST(Tradeoffs, MoreBanksMoreProcessorsMoreLatency) {
  const auto rows = enumerate_tradeoffs(256, 2);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i - 1].processors, rows[i].processors);
    EXPECT_GT(rows[i - 1].memory_latency, rows[i].memory_latency);
  }
}

}  // namespace
