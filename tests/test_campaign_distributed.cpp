// Multi-process campaign sharding: the lease protocol (atomic claims,
// stale-lease reaping, heartbeats, failure verdicts), the worker loop,
// and the coordinator — including the crash/resume suite: a SIGKILL'd
// worker's points must be stolen via its stale lease, never lost, and
// reports from any worker count, crash pattern or resume must be
// byte-identical to the single-process path.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "campaign/cache.hpp"
#include "campaign/campaign.hpp"
#include "campaign/executor.hpp"
#include "campaign/lease.hpp"
#include "campaign/runner.hpp"
#include "campaign/scenario.hpp"

namespace fs = std::filesystem;
using namespace cfm;
using namespace cfm::campaign;
using namespace std::chrono_literals;

namespace {

/// Unique scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("cfm_dist_test_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() { fs::remove_all(path); }
};

Scenario small_grid() {
  return Scenario::parse_text(R"({
    "name": "grid",
    "workload": "cfm",
    "audit": true,
    "params": { "rate": 0.3, "cycles": 300 },
    "sweep": { "n": [2, 4], "c": [1, 2] },
    "base_seed": 7 })");
}

/// Instant analytic grid for lease-mechanics tests.
Scenario tradeoff_grid() {
  return Scenario::parse_text(R"({
    "name": "rows",
    "workload": "tradeoff",
    "params": { "block_bits": 64, "b": 8 },
    "sweep": { "c": [1, 2, 4] } })");
}

void backdate(const std::string& path, std::chrono::seconds by) {
  fs::last_write_time(path, fs::file_time_type::clock::now() - by);
}

std::size_t count_files_matching(const fs::path& root,
                                 const std::string& needle) {
  std::size_t n = 0;
  if (!fs::exists(root)) return 0;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (entry.path().filename().string().find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

/// Forks a child that runs the worker loop and exits with its code —
/// the test-side stand-in for `cfm_campaign --worker`.
long long fork_worker(const Scenario& scenario, const WorkerOptions& options) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  int code = 1;
  try {
    code = run_worker(scenario, options);
  } catch (...) {
    code = 1;
  }
  ::_exit(code);
}

int wait_for(long long pid) {
  int status = 0;
  ::waitpid(static_cast<pid_t>(pid), &status, 0);
  return status;
}

}  // namespace

// ---------------------------------------------------------------------------
// Lease protocol.

TEST(Lease, ClaimIsExclusiveUntilReleased) {
  ScratchDir dir("claim");
  LeaseDir a(dir.path.string(), 60s);
  LeaseDir b(dir.path.string(), 60s);
  EXPECT_TRUE(a.try_claim("k1"));
  EXPECT_FALSE(b.try_claim("k1"));
  EXPECT_TRUE(a.leased("k1"));
  a.release("k1");
  EXPECT_TRUE(b.try_claim("k1"));
  b.release("k1");
  EXPECT_FALSE(b.leased("k1"));
}

TEST(Lease, StaleLeaseIsReapedAndReclaimed) {
  ScratchDir dir("stale");
  LeaseDir dead(dir.path.string(), 60s);
  ASSERT_TRUE(dead.try_claim("k"));
  // Simulate a kill -9'd owner: no heartbeat ever refreshes the mtime.
  backdate(dead.lease_path("k"), 10s);
  LeaseDir thief(dir.path.string(), std::chrono::milliseconds(200));
  EXPECT_FALSE(thief.leased("k")) << "backdated lease must read as stale";
  EXPECT_TRUE(thief.try_claim("k")) << "stale lease must be stolen";
  // The reaped grave file must not linger.
  EXPECT_EQ(count_files_matching(dir.path, ".reaped."), 0u);
  thief.release("k");
}

TEST(Lease, FreshLeaseIsNotReaped) {
  ScratchDir dir("fresh");
  LeaseDir owner(dir.path.string(), 60s);
  ASSERT_TRUE(owner.try_claim("k"));
  LeaseDir other(dir.path.string(), 60s);
  EXPECT_FALSE(other.try_claim("k"));
  EXPECT_TRUE(fs::exists(owner.lease_path("k")));
  owner.release("k");
}

TEST(Lease, HeartbeatKeepsALiveLeaseFresh) {
  ScratchDir dir("heartbeat");
  const auto ttl = std::chrono::milliseconds(250);
  LeaseDir owner(dir.path.string(), ttl);
  ASSERT_TRUE(owner.try_claim("k"));
  LeaseDir other(dir.path.string(), ttl);
  {
    LeaseHeartbeat heartbeat(owner.lease_path("k"), ttl);
    // Far past the TTL, but the heartbeat (every ttl/4) keeps it fresh.
    std::this_thread::sleep_for(3 * ttl);
    EXPECT_FALSE(other.try_claim("k"))
        << "heartbeated lease must not be stolen";
  }
  // Heartbeat stopped (owner "died"): the lease ages out and is stolen.
  std::this_thread::sleep_for(2 * ttl);
  EXPECT_TRUE(other.try_claim("k"));
  other.release("k");
}

TEST(Lease, FailureVerdictRoundTripAndClear) {
  ScratchDir dir("verdict");
  LeaseDir leases(dir.path.string(), 60s);
  EXPECT_FALSE(leases.load_failure("k").has_value());
  auto verdict = sim::Json::object();
  verdict["error"] = "bank exploded";
  verdict["attempts"] = 3;
  verdict["last_retry_error"] = "bank smoked";
  leases.write_failure("k", verdict);
  const auto back = leases.load_failure("k");
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->at("error").as_string(), "bank exploded");
  EXPECT_EQ(back->at("attempts").as_uint(), 3u);
  // A torn verdict reads as absent (the point is still pending).
  std::ofstream(leases.failure_path("torn"), std::ios::trunc) << "{ \"err";
  EXPECT_FALSE(leases.load_failure("torn").has_value());
  leases.clear_failures({"k", "torn"});
  EXPECT_FALSE(leases.load_failure("k").has_value());
}

TEST(Lease, SweepDropsLeftoversAndEmptyDir) {
  ScratchDir dir("sweep");
  LeaseDir leases(dir.path.string(), 60s);
  ASSERT_TRUE(leases.try_claim("a"));
  ASSERT_TRUE(leases.try_claim("b"));
  leases.sweep({"a", "b"});
  EXPECT_FALSE(fs::exists(leases.lease_path("a")));
  EXPECT_FALSE(fs::exists(leases.dir())) << "empty leases dir must go too";
}

// ---------------------------------------------------------------------------
// Bounded retry accounting (the execute_with_retry regression suite).

TEST(Retry, SucceedsAfterTransientFailuresAndRecordsAttempts) {
  // A runner that fails twice then succeeds: the report row must say so
  // — previously attempt 3 was indistinguishable from attempt 1 and the
  // retried errors were discarded.
  const auto s = Scenario::parse_text(R"({
    "name": "flaky", "workload": "tradeoff", "retries": 3,
    "params": { "block_bits": 64, "b": 8, "c": 2 } })");
  int calls = 0;
  CampaignOptions options;
  options.cache_dir.clear();
  options.runner = [&calls](const PointSpec& point) {
    if (++calls <= 2) {
      throw std::runtime_error("transient fault #" + std::to_string(calls));
    }
    return run_point(point);
  };
  const auto result = run_campaign(s, options);
  EXPECT_EQ(result.executed, 1u);
  EXPECT_EQ(result.failed, 0u);
  const auto& row = result.report.at("points").as_array()[0];
  EXPECT_EQ(row.at("attempts").as_uint(), 3u);
  EXPECT_EQ(row.at("last_retry_error").as_string(), "transient fault #2");
  EXPECT_TRUE(row.as_object().count("metrics"));
}

TEST(Retry, ExhaustedBudgetRecordsFinalAndRetriedErrors) {
  const auto s = Scenario::parse_text(R"({
    "name": "doomed", "workload": "tradeoff", "retries": 1,
    "params": { "block_bits": 64, "b": 8, "c": 2 } })");
  int calls = 0;
  CampaignOptions options;
  options.cache_dir.clear();
  options.runner = [&calls](const PointSpec&) -> sim::Json {
    throw std::runtime_error("fault #" + std::to_string(++calls));
  };
  const auto result = run_campaign(s, options);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.exit_code(), 4);
  const auto& row = result.report.at("points").as_array()[0];
  EXPECT_EQ(row.at("error").as_string(), "fault #2");
  EXPECT_EQ(row.at("attempts").as_uint(), 2u);
  EXPECT_EQ(row.at("last_retry_error").as_string(), "fault #1");
}

TEST(Retry, FirstAttemptSuccessKeepsTheRowClean) {
  // Provenance must stay out of the deterministic report body: a clean
  // first-attempt run contributes no attempts field at all.
  CampaignOptions options;
  options.cache_dir.clear();
  const auto result = run_campaign(tradeoff_grid(), options);
  for (const auto& row : result.report.at("points").as_array()) {
    EXPECT_FALSE(row.as_object().count("attempts"));
    EXPECT_FALSE(row.as_object().count("last_retry_error"));
  }
}

// ---------------------------------------------------------------------------
// Cache store failure: loud, litter-free, surfaced through the retry path.

TEST(CacheStore, RenameFailureRemovesTempAndThrows) {
  ScratchDir dir("publish");
  const auto cache_dir = (dir.path / "c").string();
  ResultCache cache(cache_dir);
  const auto point = tradeoff_grid().expand().front();
  // Occupy the entry path with a directory: the tmp write succeeds but
  // the rename cannot, which used to strand the tmp and lose the store.
  fs::create_directories(cache.path_for(point));
  auto result = sim::Json::object();
  result["metrics"] = sim::Json::object();
  EXPECT_THROW(cache.store(point, result), std::runtime_error);
  EXPECT_EQ(count_files_matching(cache_dir, ".tmp."), 0u)
      << "a failed publish must not strand its temp file";
}

TEST(CacheStore, CampaignSurfacesPersistentStoreFailureAsFailedPoint) {
  ScratchDir dir("publish_campaign");
  const auto s = Scenario::parse_text(R"({
    "name": "one", "workload": "tradeoff", "retries": 1,
    "params": { "block_bits": 64, "b": 8, "c": 2 } })");
  CampaignOptions options;
  options.cache_dir = (dir.path / "c").string();
  ResultCache cache(options.cache_dir);
  fs::create_directories(cache.path_for(s.expand().front()));
  const auto result = run_campaign(s, options);
  EXPECT_EQ(result.failed, 1u);
  EXPECT_EQ(result.exit_code(), 4);
  const auto& row = result.report.at("points").as_array()[0];
  EXPECT_NE(row.at("error").as_string().find("publish"), std::string::npos)
      << row.at("error").as_string();
  EXPECT_EQ(row.at("attempts").as_uint(), 2u) << "store failures must retry";
  EXPECT_EQ(count_files_matching(dir.path, ".tmp."), 0u);
}

// ---------------------------------------------------------------------------
// The worker loop.

TEST(Worker, CompletesTheGridStandalone) {
  ScratchDir dir("worker");
  WorkerOptions options;
  options.cache_dir = (dir.path / "c").string();
  const auto s = tradeoff_grid();
  EXPECT_EQ(run_worker(s, options), 0);
  ResultCache cache(options.cache_dir);
  for (const auto& point : s.expand()) EXPECT_TRUE(cache.contains(point));
  EXPECT_EQ(count_files_matching(dir.path, ".lease"), 0u);
  EXPECT_FALSE(fs::exists(fs::path(options.cache_dir) / "leases"));
}

TEST(Worker, ReapsAStaleLeaseFromADeadWorker) {
  ScratchDir dir("steal");
  WorkerOptions options;
  options.cache_dir = (dir.path / "c").string();
  options.lease_ttl = 200ms;
  options.poll = 20ms;
  const auto s = tradeoff_grid();
  const auto first = s.expand().front();
  // A dead worker left a lease behind (kill -9: no heartbeat, no
  // release).  The point must be stolen, not waited on forever.
  LeaseDir leases(options.cache_dir, options.lease_ttl);
  ASSERT_TRUE(leases.try_claim(first.cache_key()));
  backdate(leases.lease_path(first.cache_key()), 10s);
  EXPECT_EQ(run_worker(s, options), 0);
  EXPECT_TRUE(ResultCache(options.cache_dir).contains(first))
      << "the dead worker's point must be re-run";
  EXPECT_EQ(count_files_matching(dir.path, ".lease"), 0u);
}

TEST(Worker, HonorsPublishedFailureVerdicts) {
  ScratchDir dir("verdicts");
  WorkerOptions options;
  options.cache_dir = (dir.path / "c").string();
  const auto s = tradeoff_grid();
  const auto points = s.expand();
  LeaseDir leases(options.cache_dir, 60s);
  auto verdict = sim::Json::object();
  verdict["error"] = "poisoned";
  verdict["attempts"] = 2;
  leases.write_failure(points[1].cache_key(), verdict);
  EXPECT_EQ(run_worker(s, options), 4) << "a failed point must surface";
  ResultCache cache(options.cache_dir);
  EXPECT_TRUE(cache.contains(points[0]));
  EXPECT_FALSE(cache.contains(points[1])) << "verdicts are not re-run";
  EXPECT_TRUE(cache.contains(points[2]));
}

TEST(Worker, RequiresAResultCache) {
  WorkerOptions options;
  options.cache_dir.clear();
  EXPECT_THROW((void)run_worker(tradeoff_grid(), options),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The multi-process coordinator (crash/resume suite).

TEST(Distributed, WorkerCountsAndSingleProcessAreByteIdentical) {
  ScratchDir dir("counts");
  const auto s = small_grid();

  CampaignOptions serial;
  serial.cache_dir.clear();
  const auto reference = run_campaign(s, serial);

  for (const unsigned workers : {1u, 4u}) {
    DistributedOptions options;
    options.cache_dir =
        (dir.path / ("c" + std::to_string(workers))).string();
    options.workers = workers;
    options.poll = 20ms;
    WorkerOptions wopts;
    wopts.cache_dir = options.cache_dir;
    options.spawn = [&s, wopts] { return fork_worker(s, wopts); };
    const auto result = run_campaign_workers(s, options);
    EXPECT_EQ(result.points, 4u);
    EXPECT_EQ(result.executed, 4u);
    EXPECT_EQ(result.cached, 0u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.report.dump(), reference.report.dump())
        << "--workers " << workers
        << " must reproduce the single-process report byte-for-byte";
    EXPECT_EQ(count_files_matching(dir.path, ".lease"), 0u);
    EXPECT_EQ(count_files_matching(dir.path, ".tmp."), 0u);
  }
}

TEST(Distributed, FullyCachedRerunExecutesNothing) {
  ScratchDir dir("rerun");
  const auto s = small_grid();
  DistributedOptions options;
  options.cache_dir = (dir.path / "c").string();
  options.workers = 2;
  options.poll = 20ms;
  WorkerOptions wopts;
  wopts.cache_dir = options.cache_dir;
  options.spawn = [&s, wopts] { return fork_worker(s, wopts); };
  const auto first = run_campaign_workers(s, options);
  EXPECT_EQ(first.executed, 4u);
  const auto second = run_campaign_workers(s, options);
  EXPECT_EQ(second.executed, 0u);
  EXPECT_EQ(second.cached, 4u);
  EXPECT_EQ(second.report.dump(), first.report.dump());
}

TEST(Distributed, SigkilledWorkersPointIsStolenNotLost) {
  ScratchDir dir("sigkill");
  const auto s = small_grid();

  CampaignOptions serial;
  serial.cache_dir.clear();
  const auto reference = run_campaign(s, serial);

  const auto cache_dir = (dir.path / "c").string();
  // Victim worker: claims its first point, heartbeats rarely (long TTL)
  // and blocks inside the runner until SIGKILL arrives mid-point.
  WorkerOptions victim;
  victim.cache_dir = cache_dir;
  victim.lease_ttl = 60s;
  victim.runner = [](const PointSpec&) -> sim::Json {
    std::this_thread::sleep_for(60s);  // killed long before this returns
    throw std::runtime_error("unreachable");
  };
  const long long victim_pid = fork_worker(s, victim);
  ASSERT_GT(victim_pid, 0);

  // Wait until the victim holds a lease (it is mid-point by then).
  LeaseDir leases(cache_dir, 250ms);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  std::string held_key;
  while (held_key.empty() && std::chrono::steady_clock::now() < deadline) {
    for (const auto& point : s.expand()) {
      if (fs::exists(leases.lease_path(point.cache_key()))) {
        held_key = point.cache_key();
        break;
      }
    }
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_FALSE(held_key.empty()) << "victim never claimed a point";
  ASSERT_EQ(::kill(static_cast<pid_t>(victim_pid), SIGKILL), 0);
  wait_for(victim_pid);
  EXPECT_TRUE(fs::exists(leases.lease_path(held_key)))
      << "kill -9 must leave the lease behind (that is the point)";

  // Resume with a fresh fleet and a short TTL: the dead worker's lease
  // goes stale, is reaped, and the point re-runs on another worker.
  DistributedOptions options;
  options.cache_dir = cache_dir;
  options.workers = 2;
  options.lease_ttl = 250ms;
  options.poll = 20ms;
  WorkerOptions wopts;
  wopts.cache_dir = cache_dir;
  wopts.lease_ttl = 250ms;
  wopts.poll = 20ms;
  options.spawn = [&s, wopts] { return fork_worker(s, wopts); };
  const auto resumed = run_campaign_workers(s, options);
  EXPECT_EQ(resumed.failed, 0u);
  EXPECT_EQ(resumed.report.dump(), reference.report.dump())
      << "kill/resume must reproduce the single-process report";
  EXPECT_EQ(count_files_matching(dir.path, ".lease"), 0u)
      << "no stranded lease files after the campaign";
  EXPECT_EQ(count_files_matching(dir.path, ".tmp."), 0u);
}

TEST(Distributed, CrashedWorkerIsRespawned) {
  ScratchDir dir("respawn");
  const auto s = tradeoff_grid();
  DistributedOptions options;
  options.cache_dir = (dir.path / "c").string();
  options.workers = 1;
  options.poll = 20ms;
  WorkerOptions wopts;
  wopts.cache_dir = options.cache_dir;
  // First spawn dies instantly (crash at startup); the coordinator must
  // keep the fleet at strength with a healthy replacement.
  int spawns = 0;
  options.spawn = [&s, wopts, &spawns]() -> long long {
    if (++spawns == 1) {
      const pid_t pid = ::fork();
      if (pid == 0) ::_exit(9);
      return pid;
    }
    return fork_worker(s, wopts);
  };
  const auto result = run_campaign_workers(s, options);
  EXPECT_GE(spawns, 2);
  EXPECT_EQ(result.executed, 3u);
  EXPECT_EQ(result.failed, 0u);
}

TEST(Distributed, RequiresCacheAndAtLeastOneWorker) {
  DistributedOptions no_cache;
  no_cache.cache_dir.clear();
  no_cache.spawn = [] { return -1LL; };
  EXPECT_THROW((void)run_campaign_workers(tradeoff_grid(), no_cache),
               std::invalid_argument);
  DistributedOptions zero;
  zero.workers = 0;
  zero.spawn = [] { return -1LL; };
  EXPECT_THROW((void)run_campaign_workers(tradeoff_grid(), zero),
               std::invalid_argument);
  DistributedOptions no_spawn;  // neither spawn hook nor spawn_argv
  EXPECT_THROW((void)run_campaign_workers(tradeoff_grid(), no_spawn),
               std::invalid_argument);
}
