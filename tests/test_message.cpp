// Tests for the header-size model (Figs 3.9 / 3.10, §3.4.3).
#include <gtest/gtest.h>

#include "net/message.hpp"

namespace {

using namespace cfm::net;

TEST(Header, CircuitSwitchedCarriesEverything) {
  // Fig 3.9a: module + offset (+ bank for a multi-bank module).
  const auto h = header_layout(NetworkKind::CircuitSwitched, 8, 8, 20);
  EXPECT_EQ(h.module_bits, 3u);
  EXPECT_EQ(h.offset_bits, 20u);
  EXPECT_EQ(h.bank_bits, 3u);
  EXPECT_EQ(h.total_bits(), 26u);
}

TEST(Header, FullySynchronousIsOffsetOnly) {
  // Fig 3.9b: the bank is selected by the system clock.
  const auto h = header_layout(NetworkKind::FullySynchronous, 1, 64, 20);
  EXPECT_EQ(h.module_bits, 0u);
  EXPECT_EQ(h.bank_bits, 0u);
  EXPECT_EQ(h.total_bits(), 20u);
}

TEST(Header, PartiallySynchronousDropsBankBits) {
  // Fig 3.10a: 4 two-bank modules -> module routed, bank clocked.
  const auto h = header_layout(NetworkKind::PartiallySynchronous, 4, 2, 20);
  EXPECT_EQ(h.module_bits, 2u);
  EXPECT_EQ(h.bank_bits, 0u);
  EXPECT_EQ(h.total_bits(), 22u);
  // Fig 3.10b: 2 four-bank modules.
  const auto h2 = header_layout(NetworkKind::PartiallySynchronous, 2, 4, 20);
  EXPECT_EQ(h2.module_bits, 1u);
  EXPECT_EQ(h2.total_bits(), 21u);
}

TEST(Header, SynchronousAlwaysSmallest) {
  for (std::uint32_t modules : {1u, 2u, 8u, 64u}) {
    for (std::uint32_t banks : {1u, 4u, 16u}) {
      const auto circuit =
          header_layout(NetworkKind::CircuitSwitched, modules, banks, 24);
      const auto partial =
          header_layout(NetworkKind::PartiallySynchronous, modules, banks, 24);
      const auto sync =
          header_layout(NetworkKind::FullySynchronous, modules, banks, 24);
      EXPECT_LE(sync.total_bits(), partial.total_bits());
      EXPECT_LE(partial.total_bits(), circuit.total_bits());
    }
  }
}

TEST(SetupDelay, ClockDrivenSwitchesAreFree) {
  // §3.2.1: "There is neither setup time nor propagation delay required".
  EXPECT_EQ(setup_delay_cycles(NetworkKind::FullySynchronous, 6, 2), 0u);
  EXPECT_EQ(setup_delay_cycles(NetworkKind::CircuitSwitched, 6, 2), 12u);
  EXPECT_EQ(setup_delay_cycles(NetworkKind::PartiallySynchronous, 3, 2), 6u);
}

}  // namespace
