// Tests for the Address Tracking Table (§4.1.2): position algebra,
// expiry, masks, and the comparing-set windows.
#include <gtest/gtest.h>

#include "cfm/att.hpp"

namespace {

using namespace cfm::core;

TEST(Att, EntryInvisibleInInsertSlot) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  // Same slot: position would be -1; not findable.
  EXPECT_FALSE(att.find(10, 42, 0, 7, kWriteLike, 99).has_value());
}

TEST(Att, PositionIsAgeMinusOne) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  for (std::uint32_t age = 1; age <= 7; ++age) {
    const auto hit = att.find(10 + age, 42, 0, 7, kWriteLike, 99);
    ASSERT_TRUE(hit.has_value()) << "age " << age;
    EXPECT_EQ(hit->position, age - 1);
  }
}

TEST(Att, ExpiresAfterCapacitySlots) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  // Age 8 -> position 7 >= capacity: gone (b-1 = 7 lifetime).
  EXPECT_FALSE(att.find(18, 42, 0, 7, kWriteLike, 99).has_value());
}

TEST(Att, OffsetMustMatch) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  EXPECT_FALSE(att.find(12, 43, 0, 7, kWriteLike, 99).has_value());
}

TEST(Att, SelfEntriesIgnored) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  EXPECT_FALSE(att.find(12, 42, 0, 7, kWriteLike, 1).has_value());
  EXPECT_TRUE(att.find(12, 42, 0, 7, kWriteLike, 2).has_value());
}

TEST(Att, KindMaskFilters) {
  Att att(7);
  att.insert(10, 42, OpKind::ProtoWriteBack, 1, 0);
  EXPECT_FALSE(att.find(12, 42, 0, 7, kWriteLike, 99).has_value());
  EXPECT_TRUE(att.find(12, 42, 0, 7, kProtoExclusive, 99).has_value());
  EXPECT_TRUE(att.find(12, 42, 0, 7,
                       kind_bit(OpKind::ProtoWriteBack), 99)
                  .has_value());
  EXPECT_FALSE(att.find(12, 42, 0, 7,
                        kind_bit(OpKind::ProtoReadInv), 99)
                   .has_value());
}

TEST(Att, PositionWindowRespected) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  // At slot 14 the entry sits at position 3.
  EXPECT_TRUE(att.find(14, 42, 0, 7, kWriteLike, 99).has_value());
  EXPECT_TRUE(att.find(14, 42, 3, 4, kWriteLike, 99).has_value());
  EXPECT_FALSE(att.find(14, 42, 0, 3, kWriteLike, 99).has_value());
  EXPECT_FALSE(att.find(14, 42, 4, 7, kWriteLike, 99).has_value());
}

TEST(Att, YoungestMatchWins) {
  Att att(7);
  att.insert(10, 42, OpKind::Write, 1, 0);
  att.insert(12, 42, OpKind::SwapWrite, 2, 1);
  const auto hit = att.find(14, 42, 0, 7, kWriteLike, 99);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->op_id, 2u);  // younger (position 1) found before older
  EXPECT_EQ(hit->kind, OpKind::SwapWrite);
}

TEST(Att, MultipleEntriesTrackIndependently) {
  Att att(7);
  att.insert(10, 1, OpKind::Write, 1, 0);
  att.insert(11, 2, OpKind::Write, 2, 1);
  att.insert(12, 3, OpKind::Write, 3, 2);
  EXPECT_EQ(att.find(13, 1, 0, 7, kWriteLike, 99)->position, 2u);
  EXPECT_EQ(att.find(13, 2, 0, 7, kWriteLike, 99)->position, 1u);
  EXPECT_EQ(att.find(13, 3, 0, 7, kWriteLike, 99)->position, 0u);
  EXPECT_EQ(att.live_entries(13), 3u);
}

TEST(Att, PruneDropsExpired) {
  Att att(3);
  att.insert(0, 1, OpKind::Write, 1, 0);
  att.insert(1, 2, OpKind::Write, 2, 0);
  att.insert(10, 3, OpKind::Write, 3, 0);
  att.prune(11);
  EXPECT_EQ(att.live_entries(11), 1u);
  EXPECT_FALSE(att.find(11, 1, 0, 3, kWriteLike, 99).has_value());
  EXPECT_TRUE(att.find(11, 3, 0, 3, kWriteLike, 99).has_value());
}

}  // namespace
