// Tests for the direct-mapped cache container.
#include <gtest/gtest.h>

#include "cache/cache.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Word;

TEST(DirectCache, MissOnEmpty) {
  DirectCache cache(8, 4);
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_EQ(cache.state_of(3), LineState::Invalid);
}

TEST(DirectCache, FillAndFind) {
  DirectCache cache(8, 4);
  cache.fill(3, {1, 2, 3, 4}, LineState::Valid);
  auto* line = cache.find(3);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->state, LineState::Valid);
  EXPECT_EQ(line->data, (std::vector<Word>{1, 2, 3, 4}));
  EXPECT_EQ(cache.state_of(3), LineState::Valid);
}

TEST(DirectCache, DirectMappedConflictEvicts) {
  DirectCache cache(8, 4);
  cache.fill(3, {1, 1, 1, 1}, LineState::Valid);
  cache.fill(11, {2, 2, 2, 2}, LineState::Dirty);  // 11 mod 8 == 3
  EXPECT_EQ(cache.find(3), nullptr);
  ASSERT_NE(cache.find(11), nullptr);
  EXPECT_EQ(cache.state_of(11), LineState::Dirty);
}

TEST(DirectCache, TagMismatchIsInvisible) {
  DirectCache cache(8, 4);
  cache.fill(3, {1, 1, 1, 1}, LineState::Valid);
  EXPECT_EQ(cache.find(11), nullptr);  // same slot, different tag
  EXPECT_EQ(cache.state_of(11), LineState::Invalid);
  // But the victim is inspectable through slot_for.
  EXPECT_EQ(cache.slot_for(11).tag, 3u);
}

TEST(DirectCache, InvalidateDropsCopy) {
  DirectCache cache(8, 4);
  cache.fill(3, {1, 1, 1, 1}, LineState::Dirty);
  EXPECT_TRUE(cache.invalidate(3));
  EXPECT_EQ(cache.find(3), nullptr);
  EXPECT_FALSE(cache.invalidate(3));  // idempotent
}

TEST(DirectCache, FillResetsWbLock) {
  DirectCache cache(8, 4);
  auto& line = cache.fill(3, {0, 0, 0, 0}, LineState::Dirty);
  line.wb_locked = true;
  cache.fill(3, {1, 1, 1, 1}, LineState::Valid);
  EXPECT_FALSE(cache.find(3)->wb_locked);
}

TEST(DirectCache, HitMissCounters) {
  DirectCache cache(8, 4);
  cache.count_hit();
  cache.count_hit();
  cache.count_miss();
  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LineState, Names) {
  EXPECT_STREQ(to_string(LineState::Invalid), "invalid");
  EXPECT_STREQ(to_string(LineState::Valid), "valid");
  EXPECT_STREQ(to_string(LineState::Dirty), "dirty");
}

}  // namespace
