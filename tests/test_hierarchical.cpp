// Tests for the two-level hierarchical CFM (§5.4): access-class latencies
// (Table 5.5 / 5.6 machines), Table 5.3 state coupling, and coherence
// across clusters.
#include <gtest/gtest.h>

#include "cache/hierarchical.hpp"

namespace {

using namespace cfm::cache;
using cfm::sim::Cycle;

HierarchicalCfm::Outcome run_one(HierarchicalCfm& sys, Cycle& t,
                                 HierarchicalCfm::ReqId id,
                                 Cycle limit = 100000) {
  const Cycle deadline = t + limit;
  while (t < deadline) {
    sys.tick(t);
    ++t;
    if (auto r = sys.take_result(id)) return *r;
  }
  ADD_FAILURE() << "request timed out";
  return {};
}

TEST(Hierarchical, Table55MachineShape) {
  HierarchicalCfm sys({});  // 4 clusters x 4 procs, c=2, 16-byte lines
  EXPECT_EQ(sys.processor_count(), 16u);
  EXPECT_EQ(sys.beta_cluster(), 9u);
  EXPECT_EQ(sys.beta_global(), 9u);
  EXPECT_EQ(sys.cluster_of(0), 0u);
  EXPECT_EQ(sys.cluster_of(7), 1u);
  EXPECT_EQ(sys.local_index(7), 3u);
}

TEST(Hierarchical, GlobalReadIs3Beta) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  const auto r = run_one(sys, t, sys.read(t, 0, 42));
  EXPECT_EQ(r.cls, HierarchicalCfm::AccessClass::Global);
  EXPECT_EQ(r.completed - r.issued, 27u);  // Table 5.5: 27 cycles
}

TEST(Hierarchical, LocalClusterReadIsBeta) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.read(t, 0, 42));  // brings the line into L2
  const auto r = run_one(sys, t, sys.read(t, 1, 42));  // same cluster
  EXPECT_EQ(r.cls, HierarchicalCfm::AccessClass::LocalCluster);
  EXPECT_EQ(r.completed - r.issued, 9u);  // Table 5.5: 9 cycles
}

TEST(Hierarchical, L1HitIsOneCycle) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.read(t, 0, 42));
  const auto r = run_one(sys, t, sys.read(t, 0, 42));
  EXPECT_EQ(r.cls, HierarchicalCfm::AccessClass::L1Hit);
  EXPECT_EQ(r.completed - r.issued, 1u);
}

TEST(Hierarchical, DirtyRemoteReadCostsTheWriteBackChain) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.write(t, 0, 42, 0, 99));  // cluster 0 owns dirty
  ASSERT_EQ(sys.l1_state(0, 42), LineState::Dirty);
  const auto r = run_one(sys, t, sys.read(t, 8, 42));  // cluster 2 reads
  EXPECT_EQ(r.cls, HierarchicalCfm::AccessClass::DirtyRemote);
  // Paper: 63 (7 phases of beta); our accounting: 6 phases = 54.
  EXPECT_GE(r.completed - r.issued, 54u);
  EXPECT_LE(r.completed - r.issued, 63u);
}

TEST(Hierarchical, Table56MachineLatencies) {
  // 1024 processors, 32 clusters, 128-byte lines, c=2 -> beta = 65.
  HierarchicalCfm::Params p;
  p.clusters = 32;
  p.procs_per_cluster = 32;
  p.bank_cycle = 2;
  p.word_bits = 16;  // 64 banks x 2 bytes = 128-byte lines
  HierarchicalCfm sys(p);
  EXPECT_EQ(sys.processor_count(), 1024u);
  EXPECT_EQ(sys.beta_cluster(), 65u);
  Cycle t = 0;
  const auto global = run_one(sys, t, sys.read(t, 0, 7));
  EXPECT_EQ(global.completed - global.issued, 195u);  // Table 5.6: 195
  const auto local = run_one(sys, t, sys.read(t, 1, 7));
  EXPECT_EQ(local.completed - local.issued, 65u);     // Table 5.6: 65
}

TEST(Hierarchical, WritePropagatesOwnershipAcrossClusters) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.write(t, 0, 42, 0, 1));
  EXPECT_EQ(sys.l2_state(0, 42), LineState::Dirty);
  // A write from another cluster steals global ownership.
  const auto r = run_one(sys, t, sys.write(t, 12, 42, 1, 2));
  EXPECT_EQ(r.cls, HierarchicalCfm::AccessClass::DirtyRemote);
  EXPECT_EQ(sys.l2_state(3, 42), LineState::Dirty);
  EXPECT_NE(sys.l2_state(0, 42), LineState::Dirty);
  EXPECT_EQ(sys.l1_state(0, 42), LineState::Invalid);
  EXPECT_GE(r.invalidations, 1u);
  // The stolen line carries the first write's data plus the second's.
  const auto rd = run_one(sys, t, sys.read(t, 13, 42));
  (void)rd;
  EXPECT_TRUE(sys.check_state_coupling());
}

TEST(Hierarchical, ReadAfterRemoteWriteSeesData) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  (void)run_one(sys, t, sys.write(t, 0, 42, 2, 123));
  const auto r = run_one(sys, t, sys.read(t, 8, 42));
  EXPECT_EQ(r.cls, HierarchicalCfm::AccessClass::DirtyRemote);
  // The reader's L1 now holds the block with word 2 == 123.
  EXPECT_EQ(sys.l1_state(8, 42), LineState::Valid);
  EXPECT_TRUE(sys.check_state_coupling());
}

TEST(Hierarchical, StateCouplingInvariantUnderMixedTraffic) {
  HierarchicalCfm sys({});
  Cycle t = 0;
  std::vector<HierarchicalCfm::ReqId> live(sys.processor_count(), 0);
  std::uint64_t issued = 0;
  std::uint64_t seed = 12345;
  for (; t < 20000; ++t) {
    for (std::uint32_t p = 0; p < sys.processor_count(); ++p) {
      if (live[p] != 0 && sys.take_result(live[p])) live[p] = 0;
      if (live[p] == 0 && sys.processor_idle(p) && issued < 300) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        const auto roll = (seed >> 33) % 10;
        const auto block = (seed >> 20) % 5;
        if (roll < 6) {
          live[p] = sys.read(t, p, block);
        } else {
          live[p] = sys.write(t, p, block, 0, t);
        }
        ++issued;
      }
    }
    sys.tick(t);
    if (t % 128 == 0) {
      ASSERT_TRUE(sys.check_state_coupling()) << "Table 5.3 violated";
    }
  }
  EXPECT_TRUE(sys.check_state_coupling());
  EXPECT_EQ(issued, 300u);
}

TEST(Hierarchical, VictimWriteBackOnL1Conflict) {
  HierarchicalCfm::Params p;
  p.l1_lines = 2;  // force direct-mapped conflicts
  HierarchicalCfm sys(p);
  Cycle t = 0;
  (void)run_one(sys, t, sys.write(t, 0, 2, 0, 5));  // dirty in slot 0
  (void)run_one(sys, t, sys.read(t, 0, 4));         // 4 mod 2 == 0: evict
  EXPECT_GE(sys.counters().get("victim_wbs"), 1u);
  EXPECT_TRUE(sys.check_state_coupling());
}

}  // namespace
