// Unit tests for permutation helpers.
#include <gtest/gtest.h>

#include "net/permutation.hpp"

namespace {

using namespace cfm::net;

TEST(Shift, OutputFormula) {
  EXPECT_EQ(shift_output(0, 0, 4), 0u);
  EXPECT_EQ(shift_output(1, 0, 4), 1u);
  EXPECT_EQ(shift_output(3, 2, 4), 1u);
  EXPECT_EQ(shift_output(7, 3, 4), 2u);  // t mod n applies
}

TEST(Shift, InputInvertsOutput) {
  for (std::uint64_t t = 0; t < 16; ++t) {
    for (Port i = 0; i < 8; ++i) {
      const auto out = shift_output(t, i, 8);
      EXPECT_EQ(shift_input(t, out, 8), i);
    }
  }
}

TEST(Shift, PermutationVectorIsBijective) {
  for (std::uint64_t t = 0; t < 8; ++t) {
    EXPECT_TRUE(is_permutation(shift_permutation(t, 8)));
  }
}

TEST(IsPermutation, RejectsDuplicatesAndOutOfRange) {
  EXPECT_TRUE(is_permutation({2, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 0, 1}));
  EXPECT_FALSE(is_permutation({0, 1, 3}));
  EXPECT_TRUE(is_permutation({}));
}

TEST(Log2Exact, PowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(64), 6u);
  EXPECT_EQ(log2_exact(1u << 20), 20u);
}

TEST(Log2Exact, RejectsNonPowers) {
  EXPECT_EQ(log2_exact(0), UINT32_MAX);
  EXPECT_EQ(log2_exact(3), UINT32_MAX);
  EXPECT_EQ(log2_exact(12), UINT32_MAX);
}

class ShiftPropertyTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ShiftPropertyTest, EveryShiftIsAPermutationWithPeriodN) {
  const auto n = GetParam();
  for (std::uint64_t t = 0; t < 2 * n; ++t) {
    const auto perm = shift_permutation(t, n);
    EXPECT_TRUE(is_permutation(perm));
    // Period n in t.
    EXPECT_EQ(perm, shift_permutation(t + n, n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShiftPropertyTest,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u, 64u));

}  // namespace
