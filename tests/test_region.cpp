// Tests for shared-data regions (§6.3): strided intersection (exact CRT),
// field selectors, and the paper's Fig 6.2 / 6.3 examples.
#include <gtest/gtest.h>

#include "binding/region.hpp"

namespace {

using namespace cfm::bind;

TEST(IndexRange, Basics) {
  const IndexRange r{0, 9, 2};
  EXPECT_TRUE(r.valid());
  EXPECT_EQ(r.count(), 5);
  EXPECT_TRUE(r.contains(4));
  EXPECT_FALSE(r.contains(5));
  EXPECT_FALSE(r.contains(10));
}

TEST(RangesIntersect, PlainOverlap) {
  EXPECT_TRUE(ranges_intersect({0, 5, 1}, {3, 8, 1}));
  EXPECT_FALSE(ranges_intersect({0, 2, 1}, {3, 8, 1}));
  EXPECT_TRUE(ranges_intersect({3, 3, 1}, {0, 10, 1}));
}

TEST(RangesIntersect, StridesWithDifferentPhases) {
  // Evens vs odds: never meet.
  EXPECT_FALSE(ranges_intersect({0, 100, 2}, {1, 99, 2}));
  // Evens vs multiples of 3: meet at 0, 6, ...
  EXPECT_TRUE(ranges_intersect({0, 100, 2}, {0, 99, 3}));
  // 1 mod 4 vs 3 mod 4: disjoint.
  EXPECT_FALSE(ranges_intersect({1, 100, 4}, {3, 100, 4}));
  // 1 mod 2 vs 3 mod 4: 3 == 1 mod 2 -> intersect at 3.
  EXPECT_TRUE(ranges_intersect({1, 100, 2}, {3, 100, 4}));
}

TEST(RangesIntersect, CrtSolutionOutsideWindow) {
  // x ≡ 0 mod 6 and x ≡ 2 mod 4 -> x ∈ {6k: 6k ≡ 2 mod 4} = {6, 18, 30...}
  // wait: 6 mod 4 == 2, so 6 qualifies; restrict windows to exclude it.
  EXPECT_TRUE(ranges_intersect({0, 30, 6}, {2, 30, 4}));
  EXPECT_FALSE(ranges_intersect({0, 5, 6}, {2, 5, 4}));   // only x=0 vs x=2
  EXPECT_FALSE(ranges_intersect({12, 16, 6}, {2, 5, 4}));  // windows disjoint
}

TEST(RangesIntersect, ExhaustiveSmallCrossCheck) {
  // Brute-force oracle over small ranges.
  for (std::int64_t lo1 = 0; lo1 < 4; ++lo1) {
    for (std::int64_t s1 = 1; s1 <= 4; ++s1) {
      for (std::int64_t lo2 = 0; lo2 < 4; ++lo2) {
        for (std::int64_t s2 = 1; s2 <= 4; ++s2) {
          const IndexRange a{lo1, lo1 + 3 * s1, s1};
          const IndexRange b{lo2, lo2 + 3 * s2, s2};
          bool brute = false;
          for (auto x = a.lo; x <= a.hi; x += a.step) {
            if (b.contains(x)) brute = true;
          }
          EXPECT_EQ(ranges_intersect(a, b), brute)
              << "a=[" << a.lo << ':' << a.hi << ':' << a.step << "] b=["
              << b.lo << ':' << b.hi << ':' << b.step << ']';
        }
      }
    }
  }
}

TEST(Region, DifferentObjectsNeverIntersect) {
  const auto a = Region(1).dim(0, 10);
  const auto b = Region(2).dim(0, 10);
  EXPECT_FALSE(a.intersects(b));
}

TEST(Region, Fig63aTwoDimensionalSlices) {
  // sh[1:2][2:3] vs sh[2:3][3:4]: rows {1,2} ∩ {2,3} = {2}, cols
  // {2,3} ∩ {3,4} = {3} -> intersect at (2,3).
  const auto a = Region(1).dim(1, 2).dim(2, 3);
  const auto b = Region(1).dim(2, 3).dim(3, 4);
  EXPECT_TRUE(a.intersects(b));
  // sh[0:1][...] vs sh[2:3][...]: rows disjoint.
  const auto c = Region(1).dim(0, 1).dim(0, 9);
  EXPECT_FALSE(c.intersects(b));
}

TEST(Region, Fig63cSteppedRegions) {
  // sh[0:3:2][0:4:2] (even rows/cols) vs odd rows: disjoint.
  const auto even = Region(1).dim(0, 3, 2).dim(0, 4, 2);
  const auto odd_rows = Region(1).dim(1, 3, 2).dim(0, 4, 1);
  EXPECT_FALSE(even.intersects(odd_rows));
  const auto even_rows_odd_cols = Region(1).dim(0, 3, 2).dim(1, 4, 2);
  EXPECT_FALSE(even.intersects(even_rows_odd_cols));
  const auto overlapping = Region(1).dim(2, 3, 1).dim(2, 2, 1);
  EXPECT_TRUE(even.intersects(overlapping));
}

TEST(Region, Fig63bFieldSelectors) {
  // sh[1:2][2:3].c[2] vs the same slice restricted to field 0: disjoint
  // even though the index regions coincide.
  const auto c2 = Region(1).dim(1, 2).dim(2, 3).field(2, 2);
  const auto f0 = Region(1).dim(1, 2).dim(2, 3).field(0, 0);
  const auto whole = Region(1).dim(1, 2).dim(2, 3);
  EXPECT_FALSE(c2.intersects(f0));
  EXPECT_TRUE(c2.intersects(whole));
  EXPECT_TRUE(whole.intersects(f0));
}

TEST(Region, RankMismatchComparesPrefix) {
  // Binding a whole row vs an element of that row.
  const auto row = Region(1).dim(3, 3);
  const auto cell = Region(1).dim(3, 3).dim(5, 5);
  const auto other_row_cell = Region(1).dim(4, 4).dim(5, 5);
  EXPECT_TRUE(row.intersects(cell));
  EXPECT_FALSE(row.intersects(other_row_cell));
}

TEST(Region, WholeObjectIntersectsEverything) {
  const auto whole = Region::whole(1);
  const auto slice = Region(1).dim(100, 200, 7);
  EXPECT_TRUE(whole.intersects(slice));
  EXPECT_TRUE(slice.intersects(whole));
}

TEST(Region, InvalidDimensionThrows) {
  EXPECT_THROW(Region(1).dim(5, 4), std::invalid_argument);
  EXPECT_THROW(Region(1).dim(0, 4, 0), std::invalid_argument);
  EXPECT_THROW(Region(1).field(3, 2), std::invalid_argument);
}

TEST(Region, ToStringIsReadable) {
  const auto r = Region(7).dim(0, 9, 2).field(1, 2);
  EXPECT_EQ(r.to_string(), "obj7[0:9:2].f[1:2]");
}

}  // namespace
