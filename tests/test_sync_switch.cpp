// Unit tests for the synchronous switch box (Fig 3.4).
#include <gtest/gtest.h>

#include "net/sync_switch.hpp"

namespace {

using namespace cfm::net;

TEST(SyncSwitch, FourByFourStatesMatchFig34) {
  // Fig 3.4: at time slot t, input i connects to output (t + i) mod 4.
  SyncSwitch sw(4);
  // State 0: identity.
  for (Port i = 0; i < 4; ++i) EXPECT_EQ(sw.output_for(0, i), i);
  // State 1: one-step rotation.
  EXPECT_EQ(sw.output_for(1, 0), 1u);
  EXPECT_EQ(sw.output_for(1, 3), 0u);
  // State 3.
  EXPECT_EQ(sw.output_for(3, 0), 3u);
  EXPECT_EQ(sw.output_for(3, 1), 0u);
}

TEST(SyncSwitch, StateCyclesWithPeriodN) {
  SyncSwitch sw(4);
  for (cfm::sim::Cycle t = 0; t < 12; ++t) {
    EXPECT_EQ(sw.state(t), t % 4);
    for (Port i = 0; i < 4; ++i) {
      EXPECT_EQ(sw.output_for(t, i), sw.output_for(t + 4, i));
    }
  }
}

TEST(SyncSwitch, InputForInvertsOutputFor) {
  SyncSwitch sw(8);
  for (cfm::sim::Cycle t = 0; t < 8; ++t) {
    for (Port i = 0; i < 8; ++i) {
      EXPECT_EQ(sw.input_for(t, sw.output_for(t, i)), i);
    }
  }
}

TEST(SyncSwitch, NoOutputConflictAtAnySlot) {
  SyncSwitch sw(16);
  for (cfm::sim::Cycle t = 0; t < 16; ++t) {
    std::vector<bool> taken(16, false);
    for (Port i = 0; i < 16; ++i) {
      const auto o = sw.output_for(t, i);
      EXPECT_FALSE(taken[o]) << "two inputs map to output " << o;
      taken[o] = true;
    }
  }
}

}  // namespace
