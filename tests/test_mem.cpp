// Unit tests for the memory substrate: backing store, banks, modules, and
// the conventional contended baseline.
#include <gtest/gtest.h>

#include "mem/backing_store.hpp"
#include "mem/bank.hpp"
#include "mem/conventional.hpp"
#include "mem/module.hpp"

namespace {

using namespace cfm;
using namespace cfm::mem;

TEST(BackingStore, UnwrittenReadsZero) {
  BackingStore store(4);
  EXPECT_EQ(store.read_word(99, 0), 0u);
  EXPECT_EQ(store.read_block(99), (std::vector<sim::Word>{0, 0, 0, 0}));
  EXPECT_EQ(store.touched_blocks(), 0u);
}

TEST(BackingStore, WordWriteReadRoundtrip) {
  BackingStore store(4);
  store.write_word(5, 2, 42);
  EXPECT_EQ(store.read_word(5, 2), 42u);
  EXPECT_EQ(store.read_word(5, 1), 0u);
  EXPECT_EQ(store.touched_blocks(), 1u);
}

TEST(BackingStore, BlockWriteReadRoundtrip) {
  BackingStore store(3);
  const std::vector<sim::Word> data{7, 8, 9};
  store.write_block(2, data);
  EXPECT_EQ(store.read_block(2), data);
  EXPECT_EQ(store.read_word(2, 1), 8u);
}

TEST(BackingStore, SparseAcrossLargeAddressSpace) {
  BackingStore store(2);
  store.write_word(1ull << 40, 0, 1);
  store.write_word(1ull << 50, 1, 2);
  EXPECT_EQ(store.read_word(1ull << 40, 0), 1u);
  EXPECT_EQ(store.read_word(1ull << 50, 1), 2u);
  EXPECT_EQ(store.touched_blocks(), 2u);
}

TEST(Bank, AccessOccupiesForCycleTime) {
  BackingStore store(4);
  Bank bank(1, 3, store);
  EXPECT_FALSE(bank.busy(0));
  bank.access(0, WordOp::Write, 7, 99);
  EXPECT_TRUE(bank.busy(0));
  EXPECT_TRUE(bank.busy(2));
  EXPECT_FALSE(bank.busy(3));
  EXPECT_EQ(bank.access(3, WordOp::Read, 7), 99u);
  EXPECT_EQ(bank.accesses(), 2u);
  EXPECT_EQ(bank.busy_cycles(), 6u);
}

TEST(Bank, ReadsOwnWordIndex) {
  BackingStore store(4);
  store.write_block(3, std::vector<cfm::sim::Word>{10, 11, 12, 13});
  Bank b0(0, 1, store);
  Bank b2(2, 1, store);
  EXPECT_EQ(b0.access(0, WordOp::Read, 3), 10u);
  EXPECT_EQ(b2.access(0, WordOp::Read, 3), 12u);
}

TEST(Bank, AccessAsKeepsWordSlicesAndOccupancyContinuous) {
  // One physical bank serving two roles inside one window: standing in
  // for a dead bank's word slice (remap path, access_as) and serving its
  // own slice (decode/survivor path, access).  The occupancy state must
  // be continuous across both — it is one physical bank — while the two
  // word slices stay fully separate.
  BackingStore store(8);
  store.write_block(
      9, std::vector<cfm::sim::Word>{100, 101, 102, 103, 104, 105, 106, 107});
  Bank bank(6, 2, store);

  // Remap path: the spare inherits dead bank 3's slice...
  EXPECT_EQ(bank.access_as(0, WordOp::Read, 9, 3), 103u);
  // ...and the access occupies the *physical* bank, not slice 3.
  EXPECT_TRUE(bank.busy(1));
  EXPECT_FALSE(bank.busy(2));

  // Survivor path in the same window: the bank's own slice is untouched
  // by the remap traffic and still serves word 6.
  EXPECT_EQ(bank.access(2, WordOp::Read, 9), 106u);

  // A remapped write lands in the inherited slice only.
  bank.access_as(4, WordOp::Write, 9, 3, 77);
  EXPECT_EQ(store.read_word(9, 3), 77u);
  EXPECT_EQ(store.read_word(9, 6), 106u);

  // Occupancy accounting is continuous across both paths.
  EXPECT_EQ(bank.accesses(), 3u);
  EXPECT_EQ(bank.busy_cycles(), 6u);
}

TEST(Module, BankCountAndSharedStore) {
  Module m(0, 8, 2);
  EXPECT_EQ(m.bank_count(), 8u);
  m.bank(3).access(0, WordOp::Write, 5, 77);
  EXPECT_EQ(m.store().read_word(5, 3), 77u);
}

TEST(Module, UtilizationAccounting) {
  Module m(0, 4, 2);
  m.bank(0).access(0, WordOp::Write, 0, 1);
  m.bank(1).access(0, WordOp::Write, 0, 1);
  // 2 banks x 2 cycles busy over 4 banks x 2 cycles elapsed = 0.5.
  EXPECT_DOUBLE_EQ(m.utilization(2), 0.5);
  EXPECT_DOUBLE_EQ(m.utilization(0), 0.0);
}

TEST(Conventional, GrantsWhenIdle) {
  ConventionalMemory mem(4, 17);
  EXPECT_EQ(mem.try_start(2, 0), 17u);
  EXPECT_EQ(mem.accesses_started(), 1u);
  EXPECT_EQ(mem.conflicts(), 0u);
}

TEST(Conventional, ConflictsWhileBusy) {
  ConventionalMemory mem(4, 17);
  ASSERT_NE(mem.try_start(2, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(mem.try_start(2, 5), cfm::sim::kNeverCycle);
  EXPECT_EQ(mem.conflicts(), 1u);
  // Free again exactly at cycle 17.
  EXPECT_TRUE(mem.busy(2, 16));
  EXPECT_FALSE(mem.busy(2, 17));
  EXPECT_EQ(mem.try_start(2, 17), 34u);
}

TEST(Conventional, ModulesAreIndependent) {
  ConventionalMemory mem(4, 17);
  ASSERT_NE(mem.try_start(0, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(mem.try_start(1, 0), cfm::sim::kNeverCycle);
  EXPECT_NE(mem.try_start(2, 0), cfm::sim::kNeverCycle);
  EXPECT_EQ(mem.conflicts(), 0u);
}

}  // namespace
