// Time-series telemetry: the Log2Histogram sketch, the windowed flight
// recorder (sparse recording, deterministic downsampling, pending-window
// flush, horizon truncation), and the derived recovery / anomaly tables.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fault.hpp"
#include "sim/telemetry.hpp"

namespace cfm::sim {
namespace {

// ---- Log2Histogram ----------------------------------------------------

TEST(Log2Histogram, BucketMapping) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.bucket(0), 1u);  // zero
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 2)
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 4)
  EXPECT_EQ(h.bucket(3), 2u);  // [4, 8)
  EXPECT_EQ(h.bucket(4), 1u);  // [8, 16)
  EXPECT_EQ(h.total(), 7u);
  EXPECT_DOUBLE_EQ(h.mean(), 25.0 / 7.0);
}

TEST(Log2Histogram, BucketUpperBounds) {
  EXPECT_EQ(Log2Histogram::bucket_upper(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_upper(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_upper(2), 3u);
  EXPECT_EQ(Log2Histogram::bucket_upper(10), 1023u);
}

TEST(Log2Histogram, QuantileReturnsBucketUpper) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(3);    // bucket 2, upper 3
  for (int i = 0; i < 10; ++i) h.add(500);  // bucket 9, upper 511
  EXPECT_DOUBLE_EQ(h.quantile(0.50), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.90), 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 511.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 511.0);
}

TEST(Log2Histogram, MergeAndSubtractRoundTrip) {
  Log2Histogram a;
  Log2Histogram b;
  for (int i = 0; i < 5; ++i) a.add(10);
  for (int i = 0; i < 3; ++i) b.add(100);
  Log2Histogram merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.total(), 8u);
  merged.subtract(a);  // window delta: cumulative minus previous snapshot
  EXPECT_EQ(merged.total(), b.total());
  EXPECT_DOUBLE_EQ(merged.sum(), b.sum());
  EXPECT_EQ(merged.bucket(7), 3u);  // 100 lands in [64, 128)
}

TEST(Log2Histogram, NegativeValuesClampToZeroBucket) {
  Log2Histogram h;
  h.add(-5.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

// The whole point of the log2 geometry: the footprint is a compile-time
// constant, independent of run length or value range.  A run recording
// millions of samples must not grow the sketch.
TEST(Log2Histogram, MemoryFootprintIsFixed) {
  static_assert(sizeof(Log2Histogram) <=
                Log2Histogram::kBuckets * sizeof(std::uint64_t) + 32);
  Log2Histogram h;
  for (std::uint64_t i = 0; i < 100000; ++i) h.add(static_cast<double>(i));
  EXPECT_EQ(h.total(), 100000u);  // same object, no allocation possible
}

// ---- TelemetrySampler: windowing on a real engine ---------------------

/// A tiny deterministic workload: one counter that advances by
/// `increment` each cycle during [busy_from, busy_to), plus a gauge.
struct SyntheticLoad {
  std::uint64_t counter = 0;
  double gauge = 0.0;
};

struct Rig {
  std::unique_ptr<Engine> engine;
  SyntheticLoad load;
  std::shared_ptr<LambdaComponent> driver;
  std::unique_ptr<TelemetrySampler> sampler;

  explicit Rig(unsigned threads, Cycle window, std::size_t capacity,
               Cycle busy_from, Cycle busy_to) {
    engine = Engine::make(EngineConfig{threads});
    const auto domain = engine->allocate_domain();
    driver = std::make_shared<LambdaComponent>("test.load", domain);
    driver->on(Phase::Issue, [this, busy_from, busy_to](Cycle now) {
      if (now >= busy_from && now < busy_to) {
        ++load.counter;
        load.gauge = static_cast<double>(now % 7);
      }
    });
    engine->add(driver);
    sampler = std::make_unique<TelemetrySampler>("test.telemetry", window,
                                                 capacity);
    sampler->add_counter("ops", [this] { return load.counter; });
    sampler->add_gauge("depth", [this](Cycle) { return load.gauge; });
    engine->add(*sampler);
  }
};

TEST(TelemetrySampler, WindowDeltasSumToTotals) {
  Rig rig(1, /*window=*/32, /*capacity=*/512, 0, 1000);
  rig.engine->run_for(1000);
  const auto s = rig.sampler->series(1000);
  EXPECT_EQ(s.window_cycles, 32u);
  std::uint64_t sum = 0;
  for (const auto& row : s.rows) sum += row.counters[0];
  EXPECT_EQ(sum, rig.load.counter);
  EXPECT_EQ(s.totals[0], rig.load.counter);
}

TEST(TelemetrySampler, SparseRecordingSkipsIdleWindows) {
  // Busy for [0, 128), idle to 2048: records exist only for the busy
  // prefix, and over-running the engine adds no rows.
  Rig rig(1, /*window=*/32, /*capacity=*/512, 0, 128);
  rig.engine->run_for(2048);
  const auto s = rig.sampler->series(2048);
  ASSERT_FALSE(s.rows.empty());
  // One trailing record may hold the busy->idle gauge transition.
  EXPECT_LE(s.rows.back().start, 128u + 32u);
  for (const auto& row : s.rows) EXPECT_LT(row.start, 192u);
}

TEST(TelemetrySampler, SeriesIdenticalAcrossEnginePacing) {
  // Serial, 2- and 4-thread engines and a stunted span must export the
  // same bytes: the sampler's boundary hint forces boundary cycles into
  // reference order regardless of how the engine got there.
  const auto run = [](unsigned threads, Cycle span) {
    EngineTuning saved = engine_tuning();
    EngineTuning t = saved;
    t.max_span = span;
    set_engine_tuning(t);
    Rig rig(threads, 48, 512, 100, 900);
    rig.engine->run_for(1500);
    std::string out = rig.sampler->to_json(1500).dump();
    set_engine_tuning(saved);
    return out;
  };
  const std::string reference = run(1, 64);
  EXPECT_EQ(reference, run(2, 64));
  EXPECT_EQ(reference, run(4, 64));
  EXPECT_EQ(reference, run(1, 1));
  EXPECT_EQ(reference, run(4, 1));
}

TEST(TelemetrySampler, PendingWindowFlushMatchesBoundarySample) {
  // Engine A stops mid-window; engine B (same workload) crosses the next
  // boundary with no further activity.  Exports at the same horizon must
  // agree: the flush materializes the still-open window.
  Rig a(1, 100, 512, 0, 250);
  a.engine->run_for(250);  // stops 50 cycles short of the 300 boundary
  Rig b(1, 100, 512, 0, 250);
  b.engine->run_for(400);  // crosses the boundary while idle
  EXPECT_EQ(a.sampler->to_json(250).dump(), b.sampler->to_json(250).dump());
}

TEST(TelemetrySampler, HorizonTruncationDropsLaterRows) {
  Rig rig(1, 32, 512, 0, 1000);
  rig.engine->run_for(1000);
  const auto s = rig.sampler->series(500);
  for (const auto& row : s.rows) EXPECT_LE(row.start, 500u);
}

TEST(TelemetrySampler, FoldsDeterministicallyToCapacity) {
  // 64 busy windows into an 8-record recorder: scale doubles until the
  // rows fit, rows stay strictly increasing and aligned, and the fold is
  // the same whether it happened eagerly (small capacity, in-flight) or
  // all at export time (large capacity, folded view of the same stream).
  Rig small(1, 16, 8, 0, 1024);
  small.engine->run_for(1024);
  const auto s = small.sampler->series(1024);
  EXPECT_LE(s.rows.size(), 8u);
  EXPECT_GT(s.scale, 1u);
  EXPECT_EQ(s.window_cycles, 16u * s.scale);
  for (std::size_t i = 1; i < s.rows.size(); ++i) {
    EXPECT_LT(s.rows[i - 1].start, s.rows[i].start);
    EXPECT_EQ(s.rows[i].start % s.window_cycles, 0u);
  }
  std::uint64_t sum = 0;
  for (const auto& row : s.rows) sum += row.counters[0];
  EXPECT_EQ(sum, small.load.counter);

  // Same stream, never folded in flight; fold only the exported copy.
  Rig big(1, 16, 512, 0, 1024);
  big.engine->run_for(1024);
  auto wide = big.sampler->series(1024);
  // Re-fold the wide series down to the small recorder's scale by asking
  // the sampler machinery indirectly: compare window sums at s.scale.
  std::map<Cycle, std::uint64_t> folded;
  for (const auto& row : wide.rows) {
    folded[(row.start / s.window_cycles) * s.window_cycles] +=
        row.counters[0];
  }
  ASSERT_EQ(folded.size(), s.rows.size());
  std::size_t i = 0;
  for (const auto& [start, count] : folded) {
    EXPECT_EQ(start, s.rows[i].start);
    EXPECT_EQ(count, s.rows[i].counters[0]);
    ++i;
  }
}

TEST(TelemetrySampler, LiveJsonShowsOpenWindow) {
  Rig rig(1, 64, 512, 0, 1000);
  rig.engine->run_for(100);  // 1 boundary crossed, 36 cycles into window 1
  const auto live = rig.sampler->live_json(rig.engine->now());
  EXPECT_EQ(live.at("cycle").as_uint(), 100u);
  EXPECT_EQ(live.at("window").at("start").as_uint(), 64u);
  const auto open_delta = live.at("window").at("counters").at("ops").as_uint();
  const auto total = live.at("totals").at("ops").as_uint();
  EXPECT_EQ(total, rig.load.counter);
  EXPECT_EQ(open_delta, total - 64u);  // first window's 64 increments
}

TEST(TelemetrySampler, PrometheusTextExposesCountersAndGauges) {
  Rig rig(1, 64, 512, 0, 200);
  rig.engine->run_for(200);
  const auto text = rig.sampler->prometheus_text(rig.engine->now());
  EXPECT_NE(text.find("# TYPE cfm_ops counter"), std::string::npos);
  EXPECT_NE(text.find("cfm_ops 200\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE cfm_depth gauge"), std::string::npos);
}

// ---- recovery table and anomaly detection -----------------------------

/// Hand-built series: completed/degraded/slo columns over 10 windows of
/// 100 cycles, with a degradation burst in windows 4-5.
TelemetrySampler::Series synthetic_series() {
  TelemetrySampler::Series s;
  s.base_window = 100;
  s.window_cycles = 100;
  s.scale = 1;
  s.capacity = 512;
  s.horizon = 1000;
  s.counter_names = {"completed", "failed", "slo_within"};
  for (std::uint64_t w = 0; w < 10; ++w) {
    TelemetrySampler::Row row;
    row.start = w * 100;
    const bool degraded = w == 4 || w == 5;
    const std::uint64_t completed = degraded ? 18 : 50;
    row.counters = {completed, degraded ? 3u : 0u,
                    degraded ? completed / 2 : completed};
    s.rows.push_back(std::move(row));
  }
  s.totals = {436, 6, 418};
  return s;
}

TEST(RecoveryTable, DerivesMttrFromDegradedWindows) {
  const auto s = synthetic_series();
  const auto plan = FaultPlan::parse("bank_dead@420:module=0,bank=1");
  RecoveryConfig cfg;
  cfg.degraded_counters = {"failed"};
  cfg.completed_counter = "completed";
  cfg.slo_counter = "slo_within";
  const auto rows = recovery_table(s, plan, cfg);
  ASSERT_EQ(rows.as_array().size(), 1u);
  const auto& row = rows.as_array()[0];
  EXPECT_EQ(row.at("kind").as_string(), "bank_dead");
  EXPECT_EQ(row.at("degraded_windows").as_uint(), 2u);
  EXPECT_EQ(row.at("first_degraded_start").as_uint(), 400u);
  EXPECT_EQ(row.at("last_degraded_end").as_uint(), 600u);
  EXPECT_TRUE(row.at("recovered").as_bool());
  EXPECT_EQ(row.at("mttr_cycles").as_uint(), 180u);  // 600 - 420
  EXPECT_EQ(row.at("windows_under_slo").as_uint(), 2u);
  EXPECT_EQ(row.at("time_under_slo_cycles").as_uint(), 200u);
}

TEST(RecoveryTable, UnrecoveredWhenDegradationReachesHorizon) {
  auto s = synthetic_series();
  // Degrade the final window too: no clean air before the horizon.
  s.rows.back().counters[1] = 7;
  const auto plan = FaultPlan::parse("bank_dead@420:module=0,bank=1");
  RecoveryConfig cfg;
  cfg.degraded_counters = {"failed"};
  const auto rows = recovery_table(s, plan, cfg);
  EXPECT_FALSE(rows.as_array()[0].at("recovered").as_bool());
}

TEST(DetectAnomalies, FlagsSloBreachAndCliff) {
  const auto s = synthetic_series();
  AnomalyThresholds t;  // defaults: attainment < 0.9, cliff < 0.4 * mean
  const auto out = detect_anomalies(s, t, "completed", "slo_within", nullptr);
  EXPECT_EQ(out.at("count").as_uint(), out.at("findings").as_array().size());
  bool saw_breach = false;
  bool saw_cliff = false;
  for (const auto& f : out.at("findings").as_array()) {
    if (f.at("kind").as_string() == "slo_window_breach") saw_breach = true;
    if (f.at("kind").as_string() == "throughput_cliff") saw_cliff = true;
  }
  EXPECT_TRUE(saw_breach);
  EXPECT_TRUE(saw_cliff);
}

TEST(DetectAnomalies, CleanSeriesHasNoFindings) {
  auto s = synthetic_series();
  for (auto& row : s.rows) row.counters = {50, 0, 50};
  const auto out =
      detect_anomalies(s, AnomalyThresholds{}, "completed", "slo_within",
                       nullptr);
  EXPECT_EQ(out.at("count").as_uint(), 0u);
}

TEST(DetectAnomalies, ReportsNonRecoveryFromRecoveryRows) {
  auto s = synthetic_series();
  s.rows.back().counters[1] = 7;
  const auto plan = FaultPlan::parse("bank_dead@420:module=0,bank=1");
  RecoveryConfig cfg;
  cfg.degraded_counters = {"failed"};
  const auto recovery = recovery_table(s, plan, cfg);
  const auto out = detect_anomalies(s, AnomalyThresholds{}, "completed",
                                    "slo_within", &recovery);
  bool saw = false;
  for (const auto& f : out.at("findings").as_array()) {
    if (f.at("kind").as_string() == "post_fault_non_recovery") saw = true;
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace cfm::sim
