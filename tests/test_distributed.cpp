// Tests for the distributed-memory binding runtime (§6.5.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "binding/distributed.hpp"

namespace {

using namespace cfm::bind;

DistributedBindingRuntime::Params fast_params(std::size_t nodes = 4) {
  DistributedBindingRuntime::Params p;
  p.nodes = nodes;
  p.hop_delay = std::chrono::microseconds(0);
  return p;
}

TEST(Distributed, HomeAssignmentByObject) {
  DistributedBindingRuntime rt(fast_params(4));
  EXPECT_EQ(rt.home_of(0), 0u);
  EXPECT_EQ(rt.home_of(5), 1u);
  EXPECT_EQ(rt.home_of(11), 3u);
}

TEST(Distributed, GrantAndRelease) {
  DistributedBindingRuntime rt(fast_params());
  const auto t = rt.bind(Region(1).dim(0, 9), Access::ReadWrite,
                         Sync::NonBlocking, 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->home, 1u);
  rt.unbind(*t);
}

TEST(Distributed, NonBlockingConflictReturnsNullopt) {
  DistributedBindingRuntime rt(fast_params());
  const auto a = rt.bind(Region(1).dim(0, 9), Access::ReadWrite,
                         Sync::NonBlocking, 1);
  ASSERT_TRUE(a.has_value());
  const auto b = rt.bind(Region(1).dim(5, 15), Access::ReadWrite,
                         Sync::NonBlocking, 2);
  EXPECT_FALSE(b.has_value());
  rt.unbind(*a);
  const auto c = rt.bind(Region(1).dim(5, 15), Access::ReadWrite,
                         Sync::NonBlocking, 2);
  EXPECT_TRUE(c.has_value());
  rt.unbind(*c);
}

TEST(Distributed, BlockingBindParksUntilRelease) {
  DistributedBindingRuntime rt(fast_params());
  const auto held = rt.bind(Region(1).dim(0, 9), Access::ReadWrite,
                            Sync::NonBlocking, 1);
  ASSERT_TRUE(held.has_value());
  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    const auto t = rt.bind(Region(1).dim(0, 9), Access::ReadWrite,
                           Sync::Blocking, 2);
    granted = t.has_value();
    rt.unbind(*t);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(granted);
  rt.unbind(*held);
  waiter.join();
  EXPECT_TRUE(granted);
}

TEST(Distributed, ReadersShareAcrossNodes) {
  DistributedBindingRuntime rt(fast_params());
  const auto a = rt.bind(Region(2).dim(0, 99), Access::ReadOnly,
                         Sync::NonBlocking, 1);
  const auto b = rt.bind(Region(2).dim(0, 99), Access::ReadOnly,
                         Sync::NonBlocking, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  rt.unbind(*a);
  rt.unbind(*b);
}

TEST(Distributed, DifferentObjectsOnDifferentHomesAreIndependent) {
  DistributedBindingRuntime rt(fast_params(4));
  const auto a = rt.bind(Region::whole(0), Access::ReadWrite,
                         Sync::NonBlocking, 1);
  const auto b = rt.bind(Region::whole(1), Access::ReadWrite,
                         Sync::NonBlocking, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(a->home, b->home);
  rt.unbind(*a);
  rt.unbind(*b);
}

TEST(Distributed, RwShipsDataBothWaysRoOnlyOne) {
  DistributedBindingRuntime::Params p = fast_params();
  p.element_bytes = 8;
  DistributedBindingRuntime rt(p);
  const auto region = Region(1).dim(0, 9);  // 10 elements -> 80 bytes

  const auto ro = rt.bind(region, Access::ReadOnly, Sync::NonBlocking, 1);
  ASSERT_TRUE(ro.has_value());
  const auto after_ro_bind = rt.bytes_shipped();
  EXPECT_EQ(after_ro_bind, 80u);
  rt.unbind(*ro);
  EXPECT_EQ(rt.bytes_shipped(), 80u);  // ro release ships nothing back

  const auto rw = rt.bind(region, Access::ReadWrite, Sync::NonBlocking, 1);
  ASSERT_TRUE(rw.has_value());
  EXPECT_EQ(rt.bytes_shipped(), 160u);
  rt.unbind(*rw);
  EXPECT_EQ(rt.bytes_shipped(), 240u);  // release consistency: data goes home
}

TEST(Distributed, MessageAccounting) {
  DistributedBindingRuntime rt(fast_params());
  const auto before = rt.messages_sent();
  const auto t = rt.bind(Region::whole(3), Access::ReadOnly,
                         Sync::NonBlocking, 1);
  ASSERT_TRUE(t.has_value());
  rt.unbind(*t);
  // bind request + grant + unbind = 3 messages.
  EXPECT_EQ(rt.messages_sent() - before, 3u);
}

TEST(Distributed, ConcurrentCounterExclusive) {
  DistributedBindingRuntime rt(fast_params(2));
  int counter = 0;
  constexpr int kThreads = 6;
  constexpr int kIters = 100;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int k = 0; k < kIters; ++k) {
        const auto t = rt.bind(Region::whole(7), Access::ReadWrite,
                               Sync::Blocking, 100 + i);
        ++counter;
        rt.unbind(*t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

}  // namespace
